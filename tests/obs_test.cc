// Observability subsystem: interned metrics, log2 histograms, the
// lock-free ring buffer under contention, sink formats, and the strict
// JSONL reader.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/ring_buffer.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace pbse::obs {
namespace {

TEST(Metrics, InterningIsIdempotentAndFindable) {
  const MetricId a = intern_metric("obs_test.counter_a");
  const MetricId b = intern_metric("obs_test.counter_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(intern_metric("obs_test.counter_a"), a);
  EXPECT_EQ(find_metric("obs_test.counter_a"), a);
  EXPECT_EQ(find_metric("obs_test.never_interned"), kInvalidMetric);
  EXPECT_EQ(metric_name(a), "obs_test.counter_a");
}

TEST(Metrics, StoreCountersAndMerge) {
  const MetricId a = intern_metric("obs_test.merge_a");
  const MetricId b = intern_metric("obs_test.merge_b");
  MetricStore x, y;
  x.add(a, 3);
  y.add(a, 4);
  y.add(b);
  x.merge(y);
  EXPECT_EQ(x.counter(a), 7u);
  EXPECT_EQ(x.counter(b), 1u);
  EXPECT_EQ(x.counter(kInvalidMetric - 1), 0u);  // never touched
}

TEST(Metrics, StoreDeepCopy) {
  const MetricId h = intern_metric("obs_test.copy_hist");
  MetricStore x;
  x.observe(h, 5);
  MetricStore y = x;
  y.observe(h, 7);
  EXPECT_EQ(x.histogram(h)->count(), 1u);
  EXPECT_EQ(y.histogram(h)->count(), 2u);
}

TEST(Histogram, Log2Buckets) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);

  Histogram hist;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 100u}) hist.observe(v);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.sum(), 106u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 100u);
  EXPECT_EQ(hist.bucket(2), 2u);  // values 2 and 3
  // The median (3rd of 5) lands in bucket 2 -> upper bound 3.
  EXPECT_EQ(hist.percentile(0.5), 3u);
  EXPECT_GE(hist.percentile(1.0), 100u);
}

TEST(EventRing, PushPopInOrder) {
  EventRing ring(8);
  TraceEvent e;
  for (std::uint64_t i = 0; i < 8; ++i) {
    e.ticks = i;
    EXPECT_TRUE(ring.try_push(e));
  }
  e.ticks = 99;
  EXPECT_FALSE(ring.try_push(e));  // full
  std::vector<TraceEvent> out;
  ring.pop_all(out);
  ASSERT_EQ(out.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i].ticks, i);
  EXPECT_TRUE(ring.try_push(e));  // drained: space again
}

// Satellite (d): N producers hammer the tracer concurrently; the sink must
// see every event exactly once, in per-thread emit order. The per-thread
// rings hold 4096 events, so kEvents > 4096 forces the producer-side
// overflow drain path too.
TEST(Tracer, ContendedProducersExactlyOnceInOrder) {
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kEvents = 10000;
  const MetricId name = intern_metric("obs_test.contended");

  Tracer::instance().start(std::make_unique<MemorySink>());
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, name] {
      CampaignScope scope(t);
      for (std::uint64_t i = 0; i < kEvents; ++i)
        trace_instant(Category::kOther, name, /*ticks=*/i, /*a0=*/i);
    });
  }
  for (auto& th : threads) th.join();
  auto sink = Tracer::instance().stop();
  const auto& events = static_cast<MemorySink*>(sink.get())->events();

  ASSERT_EQ(events.size(), kThreads * kEvents);
  std::map<std::uint32_t, std::uint64_t> next;  // campaign -> expected seq
  for (const auto& e : events) {
    ASSERT_EQ(e.name, name);
    ASSERT_EQ(e.a0, next[e.campaign]) << "out of order in campaign "
                                      << e.campaign;
    ++next[e.campaign];
  }
  ASSERT_EQ(next.size(), kThreads);
  for (const auto& [campaign, count] : next) EXPECT_EQ(count, kEvents);
}

TEST(Tracer, DisabledEmitsNothingAndStartDiscardsStaleEvents) {
  const MetricId name = intern_metric("obs_test.stale");
  trace_instant(Category::kOther, name, 1);  // disabled: dropped
  Tracer::instance().start(std::make_unique<MemorySink>());
  trace_instant(Category::kOther, name, 2);
  auto sink = Tracer::instance().stop();
  const auto& events = static_cast<MemorySink*>(sink.get())->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ticks, 2u);
}

TEST(Sinks, JsonlRoundTripsThroughReader) {
  const std::string path = ::testing::TempDir() + "obs_test_roundtrip.jsonl";
  const MetricId name = intern_metric("obs_test.roundtrip");
  const MetricId arg = intern_metric("value");
  Tracer::instance().start(std::make_unique<JsonlSink>(path));
  trace_begin(Category::kSolver, name, 10, 5, arg);
  trace_end(Category::kSolver, name, 20, 6, arg);
  trace_counter(Category::kVm, name, 30, 7, arg);
  Tracer::instance().stop();

  std::vector<ParsedEvent> events;
  std::string error;
  ASSERT_TRUE(read_trace_jsonl(path, events, error)) << error;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_EQ(events[0].cat, "solver");
  EXPECT_EQ(events[0].name, "obs_test.roundtrip");
  EXPECT_EQ(events[0].ts, 10u);
  EXPECT_EQ(events[0].arg("value"), 5u);
  EXPECT_EQ(events[1].ph, 'E');
  EXPECT_EQ(events[2].ph, 'C');
  EXPECT_EQ(events[2].cat, "vm");
  std::remove(path.c_str());
}

TEST(Sinks, FileSinkPicksFormatByExtension) {
  const std::string jsonl = ::testing::TempDir() + "obs_test_fmt.jsonl";
  const std::string chrome = ::testing::TempDir() + "obs_test_fmt.json";
  const MetricId name = intern_metric("obs_test.format");

  Tracer::instance().start(make_file_sink(jsonl));
  trace_instant(Category::kPhase, name, 5);
  Tracer::instance().stop();
  Tracer::instance().start(make_file_sink(chrome));
  trace_instant(Category::kPhase, name, 5);
  Tracer::instance().stop();

  std::vector<ParsedEvent> events;
  std::string error;
  EXPECT_TRUE(read_trace_jsonl(jsonl, events, error)) << error;

  // The Chrome file is one JSON object wrapping a traceEvents array — not
  // line-delimited, so the strict JSONL reader must reject it...
  std::vector<ParsedEvent> chrome_events;
  EXPECT_FALSE(read_trace_jsonl(chrome, chrome_events, error));
  // ...but it must contain the wrapper keys Perfetto expects.
  std::FILE* f = std::fopen(chrome.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 12, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  std::remove(jsonl.c_str());
  std::remove(chrome.c_str());
}

TEST(Reader, RejectsMalformedInputWithLineNumbers) {
  std::vector<ParsedEvent> events;
  std::string error;

  EXPECT_FALSE(parse_trace_jsonl("not json\n", events, error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;

  const std::string good =
      "{\"ph\":\"I\",\"cat\":\"vm\",\"name\":\"x\",\"cid\":0,\"tid\":0,"
      "\"ts\":1}\n";
  EXPECT_TRUE(parse_trace_jsonl(good, events, error)) << error;

  EXPECT_FALSE(parse_trace_jsonl(good + "{\"ph\":\"I\"}\n", events, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  // Unknown keys are writer drift, not extension points.
  EXPECT_FALSE(parse_trace_jsonl(
      "{\"ph\":\"I\",\"cat\":\"vm\",\"name\":\"x\",\"ts\":1,\"bogus\":2}\n",
      events, error));

  // Truncated mid-object (a crashed writer).
  EXPECT_FALSE(parse_trace_jsonl("{\"ph\":\"I\",\"cat\":\"vm\"", events,
                                 error));
}

}  // namespace
}  // namespace pbse::obs
