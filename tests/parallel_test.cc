// Parallel campaign infrastructure: the thread pool, the sharded shared
// solver cache, and the campaign runner — including the determinism
// contract (a campaign's results are identical at any --jobs level when
// cache sharing is off).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/driver.h"
#include "core/parallel.h"
#include "solver/cache.h"
#include "support/thread_pool.h"
#include "targets/targets.h"

namespace pbse {
namespace {

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasksConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, InlineModeRunsAtSubmit) {
  ThreadPool pool(0);
  int x = 0;
  auto f = pool.submit([&x] { x = 7; });
  // Inline mode executed the task synchronously inside submit().
  EXPECT_EQ(x, 7);
  f.get();
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, RunAllRethrowsFirstErrorBySubmissionOrder) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&ran] { ++ran; });
  tasks.push_back([] { throw std::logic_error("first"); });
  tasks.push_back([] { throw std::runtime_error("second"); });
  tasks.push_back([&ran] { ++ran; });
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::logic_error);
  // Healthy tasks still ran to completion.
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i)
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
  }  // destructor must wait for all 32, not drop queued work
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ThrowingTaskDoesNotWedgePool) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still serve later tasks.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(pool.submit([&ran] { ++ran; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SubmitDuringShutdownIsRejectedNotLost) {
  std::promise<void> task_started;
  std::promise<void> release_task;
  bool late_submit_threw = false;
  std::atomic<int> queued_ran{0};

  auto* pool = new ThreadPool(1);
  // Occupy the single worker so the destructor has to wait on us.
  auto blocker = pool->submit([&] {
    task_started.set_value();
    release_task.get_future().wait();
  });
  // Queue more work behind the blocker; the destructor must run it all.
  for (int i = 0; i < 4; ++i) pool->submit([&queued_ran] { ++queued_ran; });
  task_started.get_future().wait();

  std::thread destroyer([&] { delete pool; });
  // Give the destructor time to flip the pool into shutdown, then try to
  // submit from outside: the pool must REJECT it loudly (throw), never
  // accept-and-drop it (a silently dropped task leaves a future pending
  // forever).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  try {
    pool->submit([] {});
  } catch (const std::runtime_error&) {
    late_submit_threw = true;
  }
  release_task.set_value();
  destroyer.join();

  EXPECT_TRUE(late_submit_threw);
  EXPECT_EQ(queued_ran.load(), 4);  // queued work survived shutdown
}

// --- ShardedQueryCache ------------------------------------------------------

TEST(ShardedCache, UnsatRoundTripsByKey) {
  ShardedQueryCache cache(4);
  cache.insert(0x1234, QueryCache::Entry{SolverResult::kUnsat, {}});
  const auto hit = cache.lookup(0x1234, {});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result, SolverResult::kUnsat);
  EXPECT_FALSE(cache.lookup(0x9999, {}).has_value());
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCache, SatModelRemapsOntoSameShapeArrays) {
  ShardedQueryCache cache(4);
  // Producer campaign: array "f" of size 8, model f[0]=5 satisfying
  // f[0] == 5. The consumer has its OWN ArrayRef with the same name+size.
  auto producer_arr = std::make_shared<Array>("f", 8);
  QueryCache::Entry entry;
  entry.result = SolverResult::kSat;
  entry.model.push_back({producer_arr, std::vector<std::uint8_t>(8, 0)});
  entry.model.back().second[0] = 5;
  cache.insert(42, entry);

  auto consumer_arr = std::make_shared<Array>("f", 8);
  const ExprRef c = mk_eq(mk_read(consumer_arr, 0), mk_const(5, 8));
  const auto hit = cache.lookup(42, {c});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result, SolverResult::kSat);
  ASSERT_EQ(hit->model.size(), 1u);
  // The returned model must reference the CONSUMER's array object.
  EXPECT_EQ(hit->model[0].first.get(), consumer_arr.get());
  EXPECT_EQ(hit->model[0].second[0], 5);
}

TEST(ShardedCache, StaleSatModelCountsAsMiss) {
  ShardedQueryCache cache(4);
  auto producer_arr = std::make_shared<Array>("f", 8);
  QueryCache::Entry entry;
  entry.result = SolverResult::kSat;
  entry.model.push_back({producer_arr, std::vector<std::uint8_t>(8, 0)});
  cache.insert(42, entry);  // model has f[0] == 0

  auto consumer_arr = std::make_shared<Array>("f", 8);
  const ExprRef c = mk_eq(mk_read(consumer_arr, 0), mk_const(5, 8));
  // Key collision with a model that does not satisfy the constraints:
  // must be reported as a miss, never a wrong SAT.
  EXPECT_FALSE(cache.lookup(42, {c}).has_value());
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(ShardedCache, ConcurrentInsertLookupIsConsistent) {
  ShardedQueryCache cache(8);
  constexpr int kThreads = 4;
  constexpr int kKeys = 256;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> observed_hits{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits] {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        // Spread keys across shards (shard index uses the high bits).
        const std::uint64_t key = k << 48 | k;
        cache.insert(key, QueryCache::Entry{SolverResult::kUnsat, {}});
        const auto hit = cache.lookup(key, {});
        ASSERT_TRUE(hit.has_value());
        ASSERT_EQ(hit->result, SolverResult::kUnsat);
        ++observed_hits;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(cache.counters().hits, observed_hits.load());
  EXPECT_EQ(cache.counters().misses, 0u);
}

// --- ParallelCampaignRunner -------------------------------------------------

TEST(ParallelRunner, OutcomesInCampaignOrderWithAggregateStats) {
  core::ParallelOptions options;
  options.jobs = 2;
  core::ParallelCampaignRunner runner(options);
  std::vector<core::Campaign> campaigns;
  for (int i = 0; i < 6; ++i) {
    campaigns.push_back({"c" + std::to_string(i),
                         [i](const core::CampaignContext& ctx) {
      EXPECT_EQ(ctx.index, static_cast<std::size_t>(i));
      EXPECT_NE(ctx.shared_cache, nullptr);
      core::CampaignOutcome out;
      out.covered = static_cast<std::uint64_t>(i);
      out.stats.add("campaign.work", 10);
      return out;
    }});
  }
  const auto outcomes = runner.run(campaigns);
  ASSERT_EQ(outcomes.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(outcomes[i].name, "c" + std::to_string(i));
    EXPECT_EQ(outcomes[i].covered, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(runner.aggregate_stats().get("campaign.work"), 60u);
  EXPECT_EQ(runner.aggregate_stats().get("parallel.campaigns"), 6u);
  EXPECT_GE(runner.wall_seconds(), 0.0);
}

TEST(ParallelRunner, FirstCampaignExceptionWinsAndOthersSettle) {
  core::ParallelOptions options;
  options.jobs = 2;
  core::ParallelCampaignRunner runner(options);
  std::atomic<int> settled{0};
  std::vector<core::Campaign> campaigns;
  campaigns.push_back({"ok", [&settled](const core::CampaignContext&) {
    ++settled;
    return core::CampaignOutcome{};
  }});
  campaigns.push_back({"bad1", [](const core::CampaignContext&)
                                   -> core::CampaignOutcome {
    throw std::logic_error("bad1");
  }});
  campaigns.push_back({"bad2", [](const core::CampaignContext&)
                                   -> core::CampaignOutcome {
    throw std::runtime_error("bad2");
  }});
  campaigns.push_back({"ok2", [&settled](const core::CampaignContext&) {
    ++settled;
    return core::CampaignOutcome{};
  }});
  EXPECT_THROW(runner.run(campaigns), std::logic_error);
  EXPECT_EQ(settled.load(), 2);
}

TEST(ParallelRunner, NoSharedCacheWhenSharingDisabled) {
  core::ParallelOptions options;
  options.share_solver_cache = false;
  core::ParallelCampaignRunner runner(options);
  std::vector<core::Campaign> campaigns;
  campaigns.push_back({"c", [](const core::CampaignContext& ctx) {
    EXPECT_EQ(ctx.shared_cache, nullptr);
    return core::CampaignOutcome{};
  }});
  runner.run(campaigns);
  EXPECT_EQ(runner.aggregate_stats().get("cache.shared_hits"), 0u);
}

// --- Determinism ------------------------------------------------------------

// The tentpole's correctness contract: each campaign owns its VClock /
// Stats / Executor and interns expressions thread-locally, so with cache
// sharing OFF a parallel run covers exactly what the serial run covers,
// tick for tick.
TEST(ParallelRunner, TwoJobCampaignsMatchSerialBitForBit) {
  const auto run_campaigns = [](unsigned jobs) {
    core::ParallelOptions options;
    options.jobs = jobs;
    options.share_solver_cache = false;
    core::ParallelCampaignRunner runner(options);
    std::vector<core::Campaign> campaigns;
    for (const char* driver : {"pngtest", "readelf"}) {
      campaigns.push_back({driver, [driver](const core::CampaignContext&) {
        const targets::TargetInfo* info = nullptr;
        for (const auto& t : targets::all_targets())
          if (t.driver == driver) info = &t;
        ir::Module module = targets::build_target(info->source());
        core::KleeRunOptions options;
        options.sym_file_size = 32;
        core::KleeRun run(module, "main", options);
        run.run(60'000);
        core::CampaignOutcome out;
        out.covered = run.executor().num_covered();
        out.ticks = run.clock().now();
        out.stats = run.stats();
        return out;
      }});
    }
    return runner.run(campaigns);
  };

  const auto serial = run_campaigns(1);
  const auto parallel = run_campaigns(2);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].covered, parallel[i].covered) << serial[i].name;
    EXPECT_EQ(serial[i].ticks, parallel[i].ticks) << serial[i].name;
    EXPECT_EQ(serial[i].stats.all(), parallel[i].stats.all())
        << serial[i].name;
  }
}

// Sharing ON with one job must still be sound: a second campaign on the
// same target re-uses the first campaign's solved queries and reaches the
// same coverage (hits change tick accounting, never soundness).
TEST(ParallelRunner, SharedCacheReuseKeepsCoverage) {
  core::ParallelOptions options;
  options.jobs = 1;
  core::ParallelCampaignRunner runner(options);
  const auto body = [](const core::CampaignContext& ctx) {
    ir::Module module = targets::build_target(
        targets::all_targets().front().source());
    core::KleeRunOptions options;
    options.sym_file_size = 32;
    options.solver.shared_cache = ctx.shared_cache;
    core::KleeRun run(module, "main", options);
    run.run(40'000);
    core::CampaignOutcome out;
    out.covered = run.executor().num_covered();
    out.stats = run.stats();
    return out;
  };
  const auto outcomes =
      runner.run({{"first", body}, {"second", body}});
  EXPECT_EQ(outcomes[0].covered, outcomes[1].covered);
  // The second campaign must actually have hit the shared cache.
  EXPECT_GT(outcomes[1].stats.get("solver.shared_cache_hits"), 0u);
  EXPECT_GT(runner.aggregate_stats().get("cache.shared_hits"), 0u);
}

}  // namespace
}  // namespace pbse
