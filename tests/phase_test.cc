// Phase analysis: k-means determinism and quality, trap-phase detection,
// k selection, ordering, and the tick->phase mapping.
#include <gtest/gtest.h>

#include "phase/kmeans.h"
#include "phase/phase_analysis.h"

namespace pbse::phase {
namespace {

std::vector<std::vector<double>> blobs(int per_cluster, int clusters,
                                       double spread, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < clusters; ++c)
    for (int i = 0; i < per_cluster; ++i)
      points.push_back({c * 10.0 + spread * rng.uniform(),
                        c * -5.0 + spread * rng.uniform()});
  return points;
}

TEST(KMeans, SeparatesWellSeparatedBlobs) {
  const auto points = blobs(20, 3, 0.5, 1);
  Rng rng(2);
  const auto result = kmeans(points, 3, rng);
  ASSERT_EQ(result.centroids.size(), 3u);
  // All points of one blob share a cluster.
  for (int c = 0; c < 3; ++c)
    for (int i = 1; i < 20; ++i)
      EXPECT_EQ(result.assignment[c * 20 + i], result.assignment[c * 20]);
  EXPECT_LT(result.inertia, 20.0);
}

TEST(KMeans, DeterministicUnderSameRng) {
  const auto points = blobs(15, 4, 2.0, 3);
  Rng rng_a(42), rng_b(42);
  const auto a = kmeans(points, 4, rng_a);
  const auto b = kmeans(points, 4, rng_b);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeans, CompactsEmptyClusters) {
  // 3 identical points can't support 5 clusters.
  std::vector<std::vector<double>> points(3, std::vector<double>{1.0, 2.0});
  Rng rng(1);
  const auto result = kmeans(points, 5, rng);
  EXPECT_EQ(result.centroids.size(), 1u);
  for (const auto a : result.assignment) EXPECT_EQ(a, 0u);
}

TEST(KMeans, ReportsWork) {
  const auto points = blobs(10, 2, 1.0, 5);
  Rng rng(1);
  EXPECT_GT(kmeans(points, 2, rng).work, 0u);
}

concolic::BBV make_bbv(std::uint64_t start, std::uint64_t end,
                       std::uint32_t dominant_bb, double coverage) {
  concolic::BBV v;
  v.start_ticks = start;
  v.end_ticks = end;
  v.counts[dominant_bb] = 90;
  v.counts[dominant_bb + 1] = 10;
  v.coverage = coverage;
  return v;
}

/// Three temporal regimes: blocks 0-, 50-, 90- each dominating a span.
/// Coverage is step-shaped (jumps at phase entry, flat inside) — the
/// realistic profile: a phase discovers its blocks quickly, then repeats.
std::vector<concolic::BBV> three_phase_trace() {
  std::vector<concolic::BBV> bbvs;
  std::uint64_t t = 0;
  for (int i = 0; i < 20; ++i, t += 100)
    bbvs.push_back(make_bbv(t, t + 100, 0, 0.10));
  for (int i = 0; i < 30; ++i, t += 100)
    bbvs.push_back(make_bbv(t, t + 100, 50, 0.30));
  for (int i = 0; i < 25; ++i, t += 100)
    bbvs.push_back(make_bbv(t, t + 100, 90, 0.50));
  return bbvs;
}

TEST(PhaseAnalysis, FindsTemporalRegimesAsTrapPhases) {
  const auto analysis = analyze_phases(three_phase_trace());
  EXPECT_EQ(analysis.phases.size(), 3u);
  EXPECT_EQ(analysis.num_trap_phases, 3u);
  // Ordered by first-BBV time.
  for (std::size_t i = 1; i < analysis.phases.size(); ++i)
    EXPECT_LT(analysis.phases[i - 1].first_ticks,
              analysis.phases[i].first_ticks);
  // Contiguity: interval assignment is a block pattern AABBCC.
  const auto& ip = analysis.interval_phase;
  for (std::size_t i = 1; i < ip.size(); ++i)
    EXPECT_LE(ip[i - 1], ip[i]) << "phases must be temporally contiguous";
}

TEST(PhaseAnalysis, TrapThresholdFiltersShortRuns) {
  auto bbvs = three_phase_trace();
  // A 2-interval blip of a fourth regime: too short to be a trap at 5%.
  bbvs.insert(bbvs.begin() + 20, make_bbv(1900, 1950, 200, 0.2));
  bbvs.insert(bbvs.begin() + 21, make_bbv(1950, 2000, 200, 0.2));
  PhaseOptions options;
  options.trap_run_fraction = 0.10;  // N ~ 8 intervals
  const auto analysis = analyze_phases(bbvs, options);
  std::uint32_t short_phase_traps = 0;
  for (const auto& p : analysis.phases)
    if (p.intervals.size() <= 2 && p.is_trap) ++short_phase_traps;
  EXPECT_EQ(short_phase_traps, 0u);
}

TEST(PhaseAnalysis, CoverageElementSeparatesRepeatedCode) {
  // Two temporally distant regimes executing the SAME blocks, with a
  // different regime between them. BBV-only merges the twins into one
  // phase; the coverage element splits them (the paper's Fig 4 mechanism).
  std::vector<concolic::BBV> bbvs;
  std::uint64_t t = 0;
  for (int i = 0; i < 15; ++i, t += 100)
    bbvs.push_back(make_bbv(t, t + 100, 0, 0.10));
  for (int i = 0; i < 15; ++i, t += 100)
    bbvs.push_back(make_bbv(t, t + 100, 50, 0.20));
  for (int i = 0; i < 15; ++i, t += 100)
    bbvs.push_back(make_bbv(t, t + 100, 0, 0.40));  // same code as phase 1

  PhaseOptions without;
  without.coverage_weight = 0.0;
  PhaseOptions with;
  with.coverage_weight = 4.0;
  const auto a = analyze_phases(bbvs, without);
  const auto b = analyze_phases(bbvs, with);
  EXPECT_LT(a.num_trap_phases, b.num_trap_phases);
  EXPECT_EQ(b.num_trap_phases, 3u);
}

TEST(PhaseAnalysis, PhaseOfTicksMapsIntoIntervals) {
  const auto bbvs = three_phase_trace();
  const auto analysis = analyze_phases(bbvs);
  EXPECT_EQ(phase_of_ticks(analysis, bbvs, 50),
            analysis.interval_phase.front());
  EXPECT_EQ(phase_of_ticks(analysis, bbvs, 2100),
            analysis.interval_phase[21]);
  // Beyond the end falls into the last interval's phase.
  EXPECT_EQ(phase_of_ticks(analysis, bbvs, 1'000'000),
            analysis.interval_phase.back());
}

TEST(PhaseAnalysis, EmptyInputYieldsNoPhases) {
  const auto analysis = analyze_phases({});
  EXPECT_TRUE(analysis.phases.empty());
  EXPECT_EQ(analysis.num_trap_phases, 0u);
}

TEST(PhaseAnalysis, KSelectionPrefersMoreTraps) {
  const auto analysis = analyze_phases(three_phase_trace());
  EXPECT_GE(analysis.chosen_k, 3u)
      << "k=1/2 find fewer traps than k=3 here, so selection must not "
         "settle below 3";
}

}  // namespace
}  // namespace pbse::phase
