// Searchers and the engine loop: selection order, population tracking,
// PTree consistency, weighted-searcher preferences, engine stop predicate.
#include <gtest/gtest.h>

#include "ir/verifier.h"
#include "lang/codegen.h"
#include "searchers/engine.h"
#include "searchers/searcher.h"
#include "solver/solver.h"

namespace pbse {
namespace {

ir::Module compile(const std::string& source) {
  ir::Module module;
  std::string error;
  if (!minic::compile(source, module, error))
    ADD_FAILURE() << "compile error: " << error;
  module.finalize();
  return module;
}

// Binary tree of depth 5 over input bytes: 32 distinct paths.
constexpr const char* kTree = R"(
u32 main(u8* f, u32 size) {
  u32 path = 0;
  for (u32 i = 0; i < 5; ++i) {
    if (f[i] & 1) { path = path * 2 + 1; } else { path = path * 2; }
  }
  out(path);
  return 0;
}
)";

// Pruning heuristics deliberately kill coverage-redundant paths, and this
// suite is about searcher ORDER over the full path tree — so the fixture
// runs with subsumption off, the same engine the sweep's "every path"
// expectations were written against.
vm::ExecutorOptions no_pruning() {
  vm::ExecutorOptions options;
  options.use_subsumption = false;
  options.use_fingerprint_dedup = false;
  return options;
}

struct EngineFixture {
  explicit EngineFixture(const std::string& source,
                         search::SearcherKind kind)
      : module(compile(source)),
        executor(module, solver, clock, stats, no_pruning()),
        searcher(search::make_searcher(kind, executor, rng)),
        engine(executor, *searcher) {
    auto input = std::make_shared<Array>("file", 8);
    engine.add_state(executor.make_initial_state("main", input, {}));
  }

  ir::Module module;
  VClock clock;
  Stats stats;
  Rng rng{7};
  Solver solver{clock, stats};
  vm::Executor executor;
  std::unique_ptr<search::Searcher> searcher;
  search::SymbolicEngine engine;
};

using SearcherSweep = ::testing::TestWithParam<search::SearcherKind>;

TEST_P(SearcherSweep, ExploresAllPathsOfSmallTree) {
  EngineFixture fx(kTree, GetParam());
  fx.engine.run(Deadline(fx.clock, 3'000'000));
  EXPECT_EQ(fx.engine.num_states(), 0u) << "all states must terminate";
  // All 32 paths produce distinct out() values 0..31.
  std::set<std::uint64_t> seen(fx.executor.out_log().begin(),
                               fx.executor.out_log().end());
  EXPECT_EQ(seen.size(), 32u)
      << search::searcher_kind_name(GetParam())
      << " must enumerate every path of the bounded tree";
  EXPECT_EQ(fx.executor.test_cases().size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSearchers, SearcherSweep,
    ::testing::Values(search::SearcherKind::kDFS, search::SearcherKind::kBFS,
                      search::SearcherKind::kRandomState,
                      search::SearcherKind::kRandomPath,
                      search::SearcherKind::kCovNew,
                      search::SearcherKind::kMD2U,
                      search::SearcherKind::kDefault));

TEST(Searchers, NamesAndParsing) {
  for (const auto kind :
       {search::SearcherKind::kDFS, search::SearcherKind::kBFS,
        search::SearcherKind::kRandomState, search::SearcherKind::kRandomPath,
        search::SearcherKind::kCovNew, search::SearcherKind::kMD2U,
        search::SearcherKind::kDefault}) {
    search::SearcherKind parsed;
    ASSERT_TRUE(
        search::parse_searcher_kind(search::searcher_kind_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  search::SearcherKind parsed;
  EXPECT_FALSE(search::parse_searcher_kind("nonsense", parsed));
}

TEST(Searchers, DfsRunsNewestStateFirst) {
  // Forked children are newer than their parents, so DFS dives into the
  // off-model side at every branch: the first completed path flips every
  // bit (31), and the tree unwinds in descending order.
  EngineFixture dfs(kTree, search::SearcherKind::kDFS);
  dfs.engine.run(Deadline(dfs.clock, 3'000'000));
  const auto& outs = dfs.executor.out_log();
  ASSERT_GE(outs.size(), 2u);
  EXPECT_EQ(outs[0], 31u);
  EXPECT_EQ(outs[1], 30u);
}

TEST(Engine, ExtraStopPredicateInterruptsRun) {
  EngineFixture fx(kTree, search::SearcherKind::kDefault);
  int calls = 0;
  fx.engine.run(Deadline(fx.clock, 3'000'000), [&calls] {
    return ++calls > 3;
  });
  EXPECT_GT(fx.engine.num_states(), 0u) << "stopped before exhaustion";
}

TEST(Engine, DeadlineBoundsVirtualTime) {
  EngineFixture fx(kTree, search::SearcherKind::kDefault);
  fx.engine.run(Deadline(fx.clock, 500));
  EXPECT_LE(fx.clock.now(), 3000u)
      << "run must stop promptly after the deadline expires";
}

TEST(Engine, CovNewPrefersFreshStates) {
  // The covnew weight decays with insts_since_cov_new: a state that keeps
  // covering new code retains weight. Smoke-check that covnew finishes the
  // tree (selection remains productive) and touches every path.
  EngineFixture fx(kTree, search::SearcherKind::kCovNew);
  fx.engine.run(Deadline(fx.clock, 3'000'000));
  EXPECT_EQ(fx.engine.num_states(), 0u);
}

}  // namespace
}  // namespace pbse
