// pbss snapshot/restore properties (DESIGN.md §11):
//  * framing rejects truncation, corruption and flavor mismatch loudly,
//  * expression/assignment/memory sharing survives the round trip,
//  * serialize(deserialize(snapshot)) is byte-for-byte identical,
//  * a campaign sliced at a batch boundary, snapshotted, restored into a
//    fresh process-state and resumed is TICK-EXACT against the monolithic
//    run — same coverage, same clock, same final snapshot bytes.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/driver.h"
#include "serialize/campaign_codec.h"
#include "serialize/pbss.h"
#include "serialize/state_codec.h"
#include "targets/targets.h"

namespace pbse {
namespace {

using serialize::CampaignCodec;
using serialize::Decoder;
using serialize::Encoder;
using serialize::SnapshotError;
using serialize::SnapshotFlavor;
using serialize::StateCodec;

// --- Framing --------------------------------------------------------------

std::vector<std::uint8_t> some_payload() {
  Encoder enc;
  enc.u64(0xdeadbeefcafef00dULL);
  enc.str("hello snapshot");
  return enc.data();
}

TEST(Pbss, FramingRoundTrip) {
  const auto payload = some_payload();
  const auto framed = serialize::frame_snapshot(SnapshotFlavor::kKlee, payload);
  EXPECT_EQ(serialize::unframe_snapshot(framed, SnapshotFlavor::kKlee),
            payload);
}

TEST(Pbss, ChecksumCatchesEveryBitFlip) {
  const auto framed =
      serialize::frame_snapshot(SnapshotFlavor::kKlee, some_payload());
  // Flip one bit at several offsets spanning header, payload and footer.
  for (std::size_t at : {std::size_t{0}, std::size_t{5}, framed.size() / 2,
                         framed.size() - 1}) {
    auto bad = framed;
    bad[at] ^= 0x10;
    EXPECT_THROW(serialize::unframe_snapshot(bad, SnapshotFlavor::kKlee),
                 SnapshotError)
        << "bit flip at offset " << at;
  }
}

TEST(Pbss, TruncationCaught) {
  const auto framed =
      serialize::frame_snapshot(SnapshotFlavor::kKlee, some_payload());
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{12},
                           framed.size() - 1}) {
    std::vector<std::uint8_t> cut(framed.begin(), framed.begin() + keep);
    EXPECT_THROW(serialize::unframe_snapshot(cut, SnapshotFlavor::kKlee),
                 SnapshotError)
        << "truncated to " << keep << " bytes";
  }
}

TEST(Pbss, FlavorMismatchCaught) {
  const auto framed =
      serialize::frame_snapshot(SnapshotFlavor::kKlee, some_payload());
  try {
    serialize::unframe_snapshot(framed, SnapshotFlavor::kPbse);
    FAIL() << "flavor mismatch must throw";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("flavor"), std::string::npos);
  }
}

TEST(Pbss, TruncatedPayloadDiagnostic) {
  // A syntactically valid frame whose PAYLOAD is cut short exercises the
  // decoder's bounds checks (not just the checksum).
  const auto payload = some_payload();
  std::vector<std::uint8_t> cut(payload.begin(), payload.begin() + 3);
  const auto framed = serialize::frame_snapshot(SnapshotFlavor::kKlee, cut);
  const auto out = serialize::unframe_snapshot(framed, SnapshotFlavor::kKlee);
  Decoder dec(out);
  EXPECT_THROW(dec.u64(), SnapshotError);  // wants 8, has 3
}

TEST(Pbss, AtomicFileRoundTrip) {
  const std::string path = "pbss_file_roundtrip_test.pbss";
  const auto framed =
      serialize::frame_snapshot(SnapshotFlavor::kPbse, some_payload());
  serialize::write_file_atomic(path, framed);
  EXPECT_EQ(serialize::read_file(path), framed);
  // The tmp staging file must be gone after the rename.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
  EXPECT_THROW(serialize::read_file(path), SnapshotError);
}

// --- Structural sharing ---------------------------------------------------

TEST(StateCodecTest, ExprRoundTripPreservesIdentityAndBytes) {
  const ArrayRef arr = std::make_shared<Array>("file", 16);
  const ExprRef shared = mk_add(mk_read(arr, 3), mk_const(7, 8));
  const ExprRef root = mk_mul(shared, mk_sub(shared, mk_read(arr, 5)));

  StateCodec enc_codec;
  Encoder enc;
  enc_codec.encode_expr(enc, root);

  StateCodec dec_codec;
  dec_codec.register_array(arr);
  Decoder dec(enc.data());
  const ExprRef back = dec_codec.decode_expr(dec);
  EXPECT_TRUE(dec.done());
  // Hash-consing + canonical array rebinding: the decoded root IS the
  // original node, pointer-identical.
  EXPECT_EQ(back.get(), root.get());

  // Re-encoding with a fresh codec reproduces the bytes exactly.
  StateCodec re_codec;
  Encoder re;
  re_codec.encode_expr(re, back);
  EXPECT_EQ(re.data(), enc.data());
}

TEST(StateCodecTest, WideDagEncodesLinearly) {
  // A deliberately diamond-heavy DAG: without the visited guard this
  // encoding would be exponential, and without dedup the decoded tree
  // would lose sharing.
  const ArrayRef arr = std::make_shared<Array>("file", 4);
  ExprRef e = mk_read(arr, 0);
  for (int i = 0; i < 40; ++i) e = mk_add(e, e);

  StateCodec codec;
  Encoder enc;
  codec.encode_expr(enc, e);
  // 41 unique nodes + framing, nowhere near 2^40.
  EXPECT_LT(enc.size(), 4096u);

  StateCodec dec_codec;
  dec_codec.register_array(arr);
  Decoder dec(enc.data());
  EXPECT_EQ(dec_codec.decode_expr(dec).get(), e.get());
}

TEST(StateCodecTest, AssignmentSharingPreserved) {
  const ArrayRef arr = std::make_shared<Array>("file", 4);
  auto model = std::make_shared<Assignment>();
  model->set(arr, {1, 2, 3, 4});
  const std::shared_ptr<const Assignment> shared = model;

  StateCodec enc_codec;
  Encoder enc;
  enc_codec.encode_assignment(enc, shared);
  enc_codec.encode_assignment(enc, shared);  // second ref: id only

  StateCodec dec_codec;
  dec_codec.register_array(arr);
  Decoder dec(enc.data());
  const auto a = dec_codec.decode_assignment(dec);
  const auto b = dec_codec.decode_assignment(dec);
  EXPECT_TRUE(dec.done());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // one heap object, shared again
}

// --- Campaign snapshots ---------------------------------------------------

core::KleeRunOptions klee_options(search::SearcherKind kind) {
  core::KleeRunOptions options;
  options.searcher = kind;
  options.sym_file_size = 100;
  return options;
}

TEST(Serialize, KleeSnapshotRestoreReserializesByteForByte) {
  const ir::Module module = targets::build_target(targets::readelf_source());
  const auto options = klee_options(search::SearcherKind::kDefault);

  core::KleeRun a(module, "main", options);
  a.run(200'000);
  const auto snap = CampaignCodec::snapshot(a);

  core::KleeRun b(module, "main", options);
  CampaignCodec::restore(b, snap);
  EXPECT_EQ(CampaignCodec::snapshot(b), snap);
  EXPECT_EQ(b.executor().num_covered(), a.executor().num_covered());
  EXPECT_EQ(b.clock().now(), a.clock().now());
  EXPECT_EQ(b.num_states(), a.num_states());
  EXPECT_EQ(b.stats().all(), a.stats().all());
}

TEST(Serialize, KleeRestoreRejectsMismatchedRun) {
  const ir::Module module = targets::build_target(targets::readelf_source());
  core::KleeRun a(module, "main", klee_options(search::SearcherKind::kDefault));
  a.run(50'000);
  const auto snap = CampaignCodec::snapshot(a);

  auto other = klee_options(search::SearcherKind::kDefault);
  other.sym_file_size = 200;  // different symbolic input
  core::KleeRun b(module, "main", other);
  EXPECT_THROW(CampaignCodec::restore(b, snap), SnapshotError);
}

TEST(Serialize, KleeSlicedResumeIsTickExact) {
  const ir::Module module = targets::build_target(targets::readelf_source());
  const std::uint64_t kBudget = 400'000;

  for (const auto kind :
       {search::SearcherKind::kDefault, search::SearcherKind::kRandomPath}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const auto options = klee_options(kind);

    // Monolithic reference run.
    core::KleeRun a(module, "main", options);
    const std::uint64_t t0 = a.clock().now();
    a.run(kBudget);
    const auto snap_a = CampaignCodec::snapshot(a);

    // Sliced run: stop at the first BATCH boundary past 1/3 budget (never
    // truncating a batch keeps the searcher/RNG streams aligned), then
    // snapshot, restore into a fresh run, and finish.
    core::KleeRun b(module, "main", options);
    ASSERT_EQ(b.clock().now(), t0);
    const std::uint64_t slice_at = t0 + kBudget / 3;
    b.run_sliced(kBudget,
                 [&b, slice_at] { return b.clock().now() >= slice_at; });
    const auto mid = CampaignCodec::snapshot(b);

    core::KleeRun c(module, "main", options);
    CampaignCodec::restore(c, mid);
    ASSERT_LE(c.clock().now(), t0 + kBudget);
    c.run(t0 + kBudget - c.clock().now());

    EXPECT_EQ(c.clock().now(), a.clock().now());
    EXPECT_EQ(c.executor().num_covered(), a.executor().num_covered());
    EXPECT_EQ(c.executor().bugs().size(), a.executor().bugs().size());
    EXPECT_EQ(c.stats().all(), a.stats().all());
    EXPECT_EQ(CampaignCodec::snapshot(c), snap_a);
  }
}

TEST(Serialize, PbseSlicedResumeIsTickExact) {
  const ir::Module module = targets::build_target(targets::readelf_source());
  const auto seed = targets::make_melf_seed(4);
  const std::uint64_t kBudget = 500'000;

  // Monolithic reference campaign.
  core::PbseDriver a(module, "main");
  ASSERT_TRUE(a.prepare(seed));
  const std::uint64_t t0 = a.clock().now();
  a.run(kBudget);
  const auto snap_a = CampaignCodec::snapshot(a);

  // Sliced campaign: step whole rotation turns until 1/3 budget, snapshot
  // mid-rotation, restore onto a freshly prepared driver, finish.
  core::PbseDriver b(module, "main");
  ASSERT_TRUE(b.prepare(seed));
  ASSERT_EQ(b.clock().now(), t0);
  b.begin_run();
  const Deadline overall_b(b.clock(), kBudget);
  while (b.clock().now() < t0 + kBudget / 3 && b.step_turn(overall_b)) {
  }
  const auto mid = CampaignCodec::snapshot(b);

  core::PbseDriver c(module, "main");
  ASSERT_TRUE(c.prepare(seed));
  CampaignCodec::restore(c, mid);
  ASSERT_EQ(CampaignCodec::snapshot(c), mid);  // restore is lossless
  ASSERT_LE(c.clock().now(), t0 + kBudget);
  const Deadline overall_c(c.clock(), t0 + kBudget - c.clock().now());
  while (c.step_turn(overall_c)) {
  }

  EXPECT_EQ(c.clock().now(), a.clock().now());
  EXPECT_EQ(c.executor().num_covered(), a.executor().num_covered());
  EXPECT_EQ(c.executor().bugs().size(), a.executor().bugs().size());
  EXPECT_EQ(c.c_time_ticks(), a.c_time_ticks());
  EXPECT_EQ(c.p_time_ticks(), a.p_time_ticks());
  EXPECT_EQ(c.bug_phases(), a.bug_phases());
  EXPECT_EQ(c.stats().all(), a.stats().all());
  EXPECT_EQ(CampaignCodec::snapshot(c), snap_a);
}

TEST(Serialize, PbseSnapshotSurvivesRepeatedSlicing) {
  // Slice every ~40k ticks — many snapshot/restore cycles, each onto a
  // freshly prepared driver, must still land tick-exact.
  const ir::Module module = targets::build_target(targets::readelf_source());
  const auto seed = targets::make_melf_seed(4);
  const std::uint64_t kBudget = 240'000;

  core::PbseDriver a(module, "main");
  ASSERT_TRUE(a.prepare(seed));
  const std::uint64_t t0 = a.clock().now();
  a.run(kBudget);
  const auto snap_a = CampaignCodec::snapshot(a);

  core::PbseDriver b(module, "main");
  ASSERT_TRUE(b.prepare(seed));
  b.begin_run();
  auto snap = CampaignCodec::snapshot(b);
  bool more = true;
  int slices = 0;
  while (more) {
    core::PbseDriver w(module, "main");
    ASSERT_TRUE(w.prepare(seed));
    CampaignCodec::restore(w, snap);
    const std::uint64_t slice_end =
        std::min(w.clock().now() + 40'000, t0 + kBudget);
    const Deadline overall(w.clock(), t0 + kBudget - w.clock().now());
    while ((more = w.step_turn(overall)) && w.clock().now() < slice_end) {
    }
    snap = CampaignCodec::snapshot(w);
    ++slices;
    ASSERT_LT(slices, 64) << "slicing must terminate";
  }
  EXPECT_GE(slices, 3) << "test must actually exercise multiple slices";
  EXPECT_EQ(snap, snap_a);
}

TEST(Serialize, CorruptedCampaignSnapshotFailsLoudly) {
  const ir::Module module = targets::build_target(targets::readelf_source());
  const auto options = klee_options(search::SearcherKind::kDefault);
  core::KleeRun a(module, "main", options);
  a.run(60'000);
  auto snap = CampaignCodec::snapshot(a);

  // Corrupt one payload byte: checksum catches it.
  auto flipped = snap;
  flipped[flipped.size() / 2] ^= 0xff;
  core::KleeRun b(module, "main", options);
  EXPECT_THROW(CampaignCodec::restore(b, flipped), SnapshotError);

  // Truncate: caught before any state is touched.
  std::vector<std::uint8_t> cut(snap.begin(),
                                snap.begin() + snap.size() / 2);
  EXPECT_THROW(CampaignCodec::restore(b, cut), SnapshotError);

  // And the intact snapshot still restores afterwards.
  CampaignCodec::restore(b, snap);
  EXPECT_EQ(CampaignCodec::snapshot(b), snap);
}

}  // namespace
}  // namespace pbse
