// pbse-serve: wire protocol, work-stealing scheduler, and daemon.
//
// The load-bearing properties:
//  * a job run in slices by the scheduler produces the SAME final campaign
//    snapshot, byte for byte, as an uninterrupted in-process run (slicing
//    cuts only at batch/turn boundaries — see tests/serialize_test.cc for
//    why that preserves the RNG stream);
//  * a job resumed from a mid-run checkpoint (the crash-recovery path)
//    finishes identically to one that was never interrupted;
//  * work stealing migrates jobs between workers without changing results
//    (jobs are pure snapshot bytes between slices).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "core/driver.h"
#include "core/pbse.h"
#include "serialize/campaign_codec.h"
#include "serialize/pbss.h"
#include "server/client.h"
#include "server/job.h"
#include "server/protocol.h"
#include "server/scheduler.h"
#include "server/server.h"
#include "targets/targets.h"

namespace pbse::server {
namespace {

// --- Json / protocol --------------------------------------------------------

TEST(Protocol, JsonRoundTrip) {
  Json obj = Json::object();
  obj.set("name", Json::string("hello \"world\"\n"));
  obj.set("count", Json::number(12345678901234ull));
  obj.set("flag", Json::boolean(true));
  obj.set("nothing", Json::null());
  Json arr = Json::array();
  arr.push_back(Json::number(1));
  arr.push_back(Json::string("two"));
  obj.set("items", std::move(arr));

  Json back = parse_json(obj.dump());
  EXPECT_EQ(back.get_string("name", ""), "hello \"world\"\n");
  EXPECT_EQ(back.get_u64("count", 0), 12345678901234ull);
  EXPECT_TRUE(back.get_bool("flag", false));
  EXPECT_TRUE(back.get("nothing").is_null());
  ASSERT_EQ(back.get("items").items().size(), 2u);
  EXPECT_EQ(back.get("items").items()[1].as_string(), "two");
  // Canonical writer: object keys are sorted, so dump() is stable.
  EXPECT_EQ(back.dump(), obj.dump());
}

TEST(Protocol, JsonRejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), ProtocolError);
  EXPECT_THROW(parse_json("[1,2"), ProtocolError);
  EXPECT_THROW(parse_json("\"unterminated"), ProtocolError);
  EXPECT_THROW(parse_json("trueX"), ProtocolError);
  EXPECT_THROW(parse_json("{} trailing"), ProtocolError);
  EXPECT_THROW(parse_json(""), ProtocolError);
}

TEST(Protocol, FramingRoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Json msg = Json::object();
  msg.set("cmd", Json::string("ping"));
  msg.set("n", Json::number(42));
  send_message(fds[0], msg);
  Json got;
  ASSERT_TRUE(recv_message(fds[1], got));
  EXPECT_EQ(got.get_string("cmd", ""), "ping");
  EXPECT_EQ(got.get_u64("n", 0), 42u);
  // Clean EOF at a frame boundary is "no more messages", not an error.
  ::close(fds[0]);
  EXPECT_FALSE(recv_message(fds[1], got));
  ::close(fds[1]);
}

TEST(Protocol, OversizedFrameLengthIsRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A corrupt length prefix must fail fast, not attempt a huge allocation.
  unsigned char hdr[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(::write(fds[0], hdr, 4), 4);
  Json got;
  EXPECT_THROW(recv_message(fds[1], got), ProtocolError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Protocol, JobSpecRoundTripAndValidation) {
  JobSpec spec;
  spec.mode = JobMode::kKlee;
  spec.target = "gif2tiff";
  spec.budget_ticks = 123456;
  spec.rng_seed = 7;
  spec.searcher = search::SearcherKind::kRandomPath;
  spec.sym_size = 321;
  spec.seed_scale = 9;
  spec.slice_ticks = 1000;
  JobSpec back = JobSpec::from_json(parse_json(spec.to_json().dump()));
  EXPECT_EQ(back.mode, JobMode::kKlee);
  EXPECT_EQ(back.target, "gif2tiff");
  EXPECT_EQ(back.budget_ticks, 123456u);
  EXPECT_EQ(back.rng_seed, 7u);
  EXPECT_EQ(back.searcher, search::SearcherKind::kRandomPath);
  EXPECT_EQ(back.sym_size, 321u);
  EXPECT_EQ(back.seed_scale, 9u);
  EXPECT_EQ(back.slice_ticks, 1000u);

  Json bad_mode = spec.to_json();
  bad_mode.set("mode", Json::string("fuzz"));
  EXPECT_THROW(JobSpec::from_json(bad_mode), ProtocolError);
  Json bad_searcher = spec.to_json();
  bad_searcher.set("searcher", Json::string("astar"));
  EXPECT_THROW(JobSpec::from_json(bad_searcher), ProtocolError);
  Json no_target = spec.to_json();
  no_target.set("target", Json::string(""));
  EXPECT_THROW(JobSpec::from_json(no_target), ProtocolError);
  Json zero_budget = spec.to_json();
  zero_budget.set("budget_ticks", Json::number(std::uint64_t{0}));
  EXPECT_THROW(JobSpec::from_json(zero_budget), ProtocolError);
}

// --- Scheduler ---------------------------------------------------------------

/// Event sink safe to fill from worker threads. Inspect only after
/// Scheduler::stop() has joined the workers.
struct EventLog {
  std::mutex mu;
  std::vector<JobEvent> events;
  Scheduler::EventFn fn() {
    return [this](const JobEvent& ev) {
      std::lock_guard<std::mutex> lock(mu);
      events.push_back(ev);
    };
  }
};

core::KleeRunOptions klee_options_for(const JobSpec& spec) {
  core::KleeRunOptions options;
  options.searcher = spec.searcher;
  options.sym_file_size = spec.sym_size;
  options.rng_seed = spec.rng_seed;
  return options;
}

TEST(Scheduler, SlicedKleeJobMatchesMonolithicRun) {
  JobSpec spec;
  spec.mode = JobMode::kKlee;
  spec.target = "readelf";
  spec.budget_ticks = 120'000;
  spec.sym_size = 100;
  spec.slice_ticks = 30'000;  // forces >= 4 slices

  SchedulerOptions options;
  options.workers = 1;
  EventLog log;
  Scheduler scheduler(options, log.fn());
  std::uint64_t id = scheduler.submit(spec);
  scheduler.wait_idle();
  scheduler.stop();

  JobRecord rec;
  ASSERT_TRUE(scheduler.query(id, rec));
  ASSERT_EQ(rec.state, JobState::kDone) << rec.error;

  // Uninterrupted reference run with identical construction.
  const ir::Module module = targets::build_target(targets::readelf_source());
  core::KleeRun golden(module, "main", klee_options_for(spec));
  golden.run(spec.budget_ticks);

  EXPECT_EQ(rec.progress.ticks, golden.clock().now());
  EXPECT_EQ(rec.progress.covered, golden.executor().num_covered());
  EXPECT_EQ(rec.progress.bugs, golden.executor().bugs().size());
  // The strong form: the sliced job's final campaign image is bit-identical.
  EXPECT_EQ(rec.snapshot, serialize::CampaignCodec::snapshot(golden));

  // Multiple slices really happened, each streaming a metrics event.
  std::size_t metrics = 0;
  for (const JobEvent& ev : log.events)
    if (ev.kind == JobEvent::Kind::kMetrics) ++metrics;
  EXPECT_GE(metrics, 4u);
}

TEST(Scheduler, SlicedPbseJobMatchesMonolithicRun) {
  JobSpec spec;
  spec.mode = JobMode::kPbse;
  spec.target = "readelf";
  spec.budget_ticks = 200'000;
  spec.seed_scale = 4;
  spec.slice_ticks = 60'000;

  SchedulerOptions options;
  options.workers = 1;
  EventLog log;
  Scheduler scheduler(options, log.fn());
  std::uint64_t id = scheduler.submit(spec);
  scheduler.wait_idle();
  scheduler.stop();

  JobRecord rec;
  ASSERT_TRUE(scheduler.query(id, rec));
  ASSERT_EQ(rec.state, JobState::kDone) << rec.error;

  const ir::Module module = targets::build_target(targets::readelf_source());
  core::PbseOptions pbse_options;
  pbse_options.phase_searcher = spec.searcher;
  pbse_options.rng_seed = spec.rng_seed;
  core::PbseDriver golden(module, "main", pbse_options);
  ASSERT_TRUE(golden.prepare(targets::make_melf_seed(spec.seed_scale)));
  golden.run(spec.budget_ticks);

  EXPECT_EQ(rec.progress.ticks, golden.clock().now());
  EXPECT_EQ(rec.progress.covered, golden.executor().num_covered());
  EXPECT_EQ(rec.progress.bugs, golden.executor().bugs().size());
  EXPECT_EQ(rec.snapshot, serialize::CampaignCodec::snapshot(golden));
}

TEST(Scheduler, ResumeFromMidCheckpointMatchesUninterrupted) {
  JobSpec spec;
  spec.mode = JobMode::kPbse;
  spec.target = "readelf";
  spec.budget_ticks = 200'000;
  spec.seed_scale = 4;
  spec.slice_ticks = 50'000;

  SchedulerOptions options;
  options.workers = 1;

  // Uninterrupted pass; keep the first mid-run checkpoint (what the server
  // would have had on disk when a crash hit).
  EventLog log;
  Scheduler first(options, log.fn());
  std::uint64_t id = first.submit(spec);
  first.wait_idle();
  first.stop();
  JobRecord final_rec;
  ASSERT_TRUE(first.query(id, final_rec));
  ASSERT_EQ(final_rec.state, JobState::kDone) << final_rec.error;

  const JobEvent* mid = nullptr;
  for (const JobEvent& ev : log.events) {
    if (ev.kind == JobEvent::Kind::kCheckpoint &&
        ev.record.state == JobState::kCheckpointed) {
      mid = &ev;
      break;
    }
  }
  ASSERT_NE(mid, nullptr) << "job finished without a mid-run checkpoint";

  // Recovery pass: round-trip the record through its persisted form (meta
  // JSON + snapshot bytes), resubmit into a FRESH scheduler, finish.
  JobRecord recovered =
      JobRecord::from_meta_json(parse_json(mid->record.meta_json().dump()));
  recovered.snapshot = mid->record.snapshot;
  EXPECT_GT(recovered.run_end_ticks, 0u);

  EventLog log2;
  Scheduler second(options, log2.fn());
  second.resubmit(std::move(recovered));
  second.wait_idle();
  second.stop();

  JobRecord resumed;
  ASSERT_TRUE(second.query(id, resumed));
  ASSERT_EQ(resumed.state, JobState::kDone) << resumed.error;
  EXPECT_EQ(resumed.progress.ticks, final_rec.progress.ticks);
  EXPECT_EQ(resumed.progress.covered, final_rec.progress.covered);
  EXPECT_EQ(resumed.progress.bugs, final_rec.progress.bugs);
  EXPECT_EQ(resumed.snapshot, final_rec.snapshot);  // bit-identical campaign
}

TEST(Scheduler, WorkStealingMigratesJobsAndPreservesResults) {
  // Worker 0's deque gets the even job ids, worker 1's the odd ones. Odd
  // jobs are tiny, so worker 1 drains its deque and must steal the large
  // even jobs to keep busy.
  SchedulerOptions options;
  options.workers = 2;
  EventLog log;
  Scheduler scheduler(options, log.fn());

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    JobSpec spec;
    spec.mode = JobMode::kKlee;
    spec.target = "readelf";
    spec.sym_size = 100;
    bool odd = (i % 2) == 0;  // ids start at 1: submissions 0,2,4 -> odd ids
    spec.budget_ticks = odd ? 20'000 : 120'000;
    spec.slice_ticks = 10'000;
    ids.push_back(scheduler.submit(spec));
  }
  scheduler.wait_idle();
  const std::uint64_t steals = scheduler.steals();
  scheduler.stop();

  EXPECT_GE(steals, 1u) << "no job ever migrated between workers";
  for (std::uint64_t id : ids) {
    JobRecord rec;
    ASSERT_TRUE(scheduler.query(id, rec));
    EXPECT_EQ(rec.state, JobState::kDone) << rec.error;
  }

  // Stealing must not change results: every large job, wherever its slices
  // ran, matches the monolithic reference.
  const ir::Module module = targets::build_target(targets::readelf_source());
  JobSpec big;
  big.mode = JobMode::kKlee;
  big.target = "readelf";
  big.sym_size = 100;
  big.budget_ticks = 120'000;
  core::KleeRun golden(module, "main", klee_options_for(big));
  golden.run(big.budget_ticks);
  const auto golden_snap = serialize::CampaignCodec::snapshot(golden);
  for (std::uint64_t id : ids) {
    JobRecord rec;
    ASSERT_TRUE(scheduler.query(id, rec));
    if (rec.spec.budget_ticks == big.budget_ticks)
      EXPECT_EQ(rec.snapshot, golden_snap) << "job " << id;
  }
}

TEST(Scheduler, UnknownTargetFailsTheJobLoudly) {
  SchedulerOptions options;
  options.workers = 1;
  EventLog log;
  Scheduler scheduler(options, log.fn());
  JobSpec spec;
  spec.target = "no-such-target";
  std::uint64_t id = scheduler.submit(spec);
  scheduler.wait_idle();
  scheduler.stop();
  JobRecord rec;
  ASSERT_TRUE(scheduler.query(id, rec));
  EXPECT_EQ(rec.state, JobState::kFailed);
  EXPECT_NE(rec.error.find("unknown target"), std::string::npos) << rec.error;
}

// --- Server end to end -------------------------------------------------------

struct TempServerDir {
  std::string dir;
  explicit TempServerDir(const std::string& name)
      : dir(name + "-" + std::to_string(::getpid())) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempServerDir() { std::filesystem::remove_all(dir); }
  std::string path(const std::string& leaf) const { return dir + "/" + leaf; }
};

TEST(Server, EndToEndSubmitWaitStatusShutdown) {
  TempServerDir tmp("srv_e2e");
  ServerOptions options;
  options.socket_path = tmp.path("serve.sock");
  options.state_dir = tmp.path("state");
  options.scheduler.workers = 2;

  Server server(options);
  server.start();
  std::thread loop([&server] { server.serve_forever(); });

  JobSpec spec;
  spec.mode = JobMode::kKlee;
  spec.target = "readelf";
  spec.budget_ticks = 60'000;
  spec.sym_size = 100;
  spec.slice_ticks = 20'000;

  {
    Client client = Client::connect_unix(options.socket_path);
    Json ping = Json::object();
    ping.set("cmd", Json::string("ping"));
    EXPECT_TRUE(client.request(ping).get_bool("ok", false));

    std::uint64_t id = client.submit(spec);
    EXPECT_GT(id, 0u);
    Json done = client.wait(id);
    EXPECT_EQ(done.get_string("event", ""), "done");

    // Streamed progress must match a local reference run.
    const ir::Module module = targets::build_target(targets::readelf_source());
    core::KleeRun golden(module, "main", klee_options_for(spec));
    golden.run(spec.budget_ticks);
    EXPECT_EQ(done.get("progress").get_u64("covered", 0),
              golden.executor().num_covered());
    EXPECT_EQ(done.get("progress").get_u64("ticks", 0), golden.clock().now());

    // status and list see the terminal record.
    Json status = Json::object();
    status.set("cmd", Json::string("status"));
    status.set("job", Json::number(id));
    Json resp = client.request(status);
    ASSERT_TRUE(resp.get_bool("ok", false));
    EXPECT_EQ(resp.get("record").get_string("state", ""), "done");

    Json list = Json::object();
    list.set("cmd", Json::string("list"));
    EXPECT_EQ(client.request(list).get("jobs").items().size(), 1u);

    // wait() on an already-terminal job returns immediately.
    Json again = client.wait(id);
    EXPECT_EQ(again.get_string("event", ""), "done");

    // The job's checkpoint made it to the state directory.
    EXPECT_TRUE(std::filesystem::exists(
        options.state_dir + "/job-" + std::to_string(id) + ".json"));
    EXPECT_TRUE(std::filesystem::exists(
        options.state_dir + "/job-" + std::to_string(id) + ".pbss"));

    Json bye = Json::object();
    bye.set("cmd", Json::string("shutdown"));
    EXPECT_TRUE(client.request(bye).get_bool("ok", false));
  }
  loop.join();
}

TEST(Server, RecoversInterruptedJobFromStateDir) {
  // Forge the on-disk aftermath of a crash: a mid-run checkpoint captured
  // from a reference scheduler pass, persisted exactly as the daemon would
  // have (job-<id>.pbss + job-<id>.json with state "running").
  JobSpec spec;
  spec.mode = JobMode::kPbse;
  spec.target = "readelf";
  spec.budget_ticks = 200'000;
  spec.seed_scale = 4;
  spec.slice_ticks = 50'000;

  SchedulerOptions sched_options;
  sched_options.workers = 1;
  EventLog log;
  Scheduler reference(sched_options, log.fn());
  std::uint64_t id = reference.submit(spec);
  reference.wait_idle();
  reference.stop();
  JobRecord final_rec;
  ASSERT_TRUE(reference.query(id, final_rec));
  ASSERT_EQ(final_rec.state, JobState::kDone) << final_rec.error;

  const JobEvent* mid = nullptr;
  for (const JobEvent& ev : log.events) {
    if (ev.kind == JobEvent::Kind::kCheckpoint &&
        ev.record.state == JobState::kCheckpointed) {
      mid = &ev;
      break;
    }
  }
  ASSERT_NE(mid, nullptr);

  TempServerDir tmp("srv_recover");
  ServerOptions options;
  options.socket_path = tmp.path("serve.sock");
  options.state_dir = tmp.path("state");
  options.scheduler.workers = 1;
  std::filesystem::create_directories(options.state_dir);

  JobRecord crashed = mid->record;
  crashed.state = JobState::kRunning;  // died mid-slice
  serialize::write_file_atomic(
      options.state_dir + "/job-" + std::to_string(id) + ".pbss",
      crashed.snapshot);
  {
    std::string meta = crashed.meta_json().dump();
    std::string path =
        options.state_dir + "/job-" + std::to_string(id) + ".json";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(meta.data(), 1, meta.size(), f), meta.size());
    std::fclose(f);
  }

  Server server(options);
  server.start();
  EXPECT_EQ(server.recovered_jobs(), 1u);
  std::thread loop([&server] { server.serve_forever(); });
  {
    Client client = Client::connect_unix(options.socket_path);
    Json done = client.wait(id);
    EXPECT_EQ(done.get_string("event", ""), "done");
    EXPECT_EQ(done.get("progress").get_u64("ticks", 0),
              final_rec.progress.ticks);
    EXPECT_EQ(done.get("progress").get_u64("covered", 0),
              final_rec.progress.covered);
    EXPECT_EQ(done.get("progress").get_u64("bugs", 0),
              final_rec.progress.bugs);

    // The re-persisted final snapshot matches the uninterrupted run's.
    auto resumed_snap = serialize::read_file(
        options.state_dir + "/job-" + std::to_string(id) + ".pbss");
    EXPECT_EQ(resumed_snap, final_rec.snapshot);

    Json bye = Json::object();
    bye.set("cmd", Json::string("shutdown"));
    client.request(bye);
  }
  loop.join();
}

}  // namespace
}  // namespace pbse::server
