// End-to-end smoke tests: MiniC -> IR -> concrete/symbolic execution.
#include <gtest/gtest.h>

#include "core/driver.h"
#include "ir/verifier.h"
#include "lang/codegen.h"
#include "searchers/engine.h"

namespace pbse {
namespace {

ir::Module compile_or_die(const std::string& source) {
  ir::Module module;
  std::string error;
  if (!minic::compile(source, module, error)) {
    ADD_FAILURE() << "compile error: " << error;
  }
  module.finalize();
  const auto problems = ir::verify(module);
  for (const auto& p : problems) ADD_FAILURE() << "verifier: " << p;
  return module;
}

constexpr const char* kBranchy = R"(
u32 helper(u8* f, u32 n) {
  u32 sum = 0;
  for (u32 i = 0; i < n; ++i) {
    if (f[i] > 128) { sum += 2; } else { sum += 1; }
  }
  return sum;
}
u32 main(u8* file, u32 size) {
  if (size < 4) { return 0; }
  if (file[0] == 'P' && file[1] == 'B') {
    out(helper(file, 4));
    return 1;
  }
  return 2;
}
)";

TEST(Smoke, CompilesAndVerifies) {
  ir::Module module = compile_or_die(kBranchy);
  EXPECT_NE(module.function_by_name("main"), nullptr);
  EXPECT_GT(module.total_blocks(), 5u);
}

TEST(Smoke, SymbolicRunCoversBothMagicOutcomes) {
  ir::Module module = compile_or_die(kBranchy);
  core::KleeRunOptions options;
  options.searcher = search::SearcherKind::kDFS;
  options.sym_file_size = 8;
  core::KleeRun run(module, "main", options);
  run.run(2'000'000);
  // With a symbolic 8-byte file, symbolic execution must reach the magic
  // branch both ways and the helper loop.
  EXPECT_GT(run.executor().num_covered(), 10u);
  EXPECT_GE(run.executor().test_cases().size(), 2u);
}

TEST(Smoke, ConcolicFollowsSeedAndRecordsSeedStates) {
  ir::Module module = compile_or_die(kBranchy);
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  const std::vector<std::uint8_t> seed = {'P', 'B', 200, 10, 0, 0};
  auto result = concolic::run_concolic(executor, "main", seed);
  EXPECT_EQ(result.termination, vm::TerminationReason::kExit);
  // Magic checks + loop comparisons fork symbolic branches; seedStates are
  // deduplicated per fork POINT at record time, so the count equals the
  // number of distinct symbolic branch sites on the seed path.
  EXPECT_GE(result.seed_states.size(), 3u);
  EXPECT_FALSE(result.bbvs.empty());
}

constexpr const char* kBuggy = R"(
u32 main(u8* file, u32 size) {
  u8 table[4] = { 1, 2, 3, 4 };
  if (size < 2) { return 0; }
  if (file[0] == 0x42) {
    // OOB read when file[1] >= 4.
    return table[file[1]];
  }
  return 1;
}
)";

TEST(Smoke, SymbolicExecutionFindsOutOfBoundsRead) {
  ir::Module module = compile_or_die(kBuggy);
  core::KleeRunOptions options;
  options.sym_file_size = 4;
  core::KleeRun run(module, "main", options);
  run.run(2'000'000);
  ASSERT_GE(run.executor().bugs().size(), 1u);
  EXPECT_EQ(run.executor().bugs()[0].kind, vm::BugKind::kOutOfBoundsRead);
  // The generated witness must actually satisfy the bug precondition.
  const auto& input = run.executor().bugs()[0].input;
  ASSERT_GE(input.size(), 2u);
  EXPECT_EQ(input[0], 0x42);
  EXPECT_GE(input[1], 4);
}

TEST(Smoke, PbseEndToEnd) {
  ir::Module module = compile_or_die(kBranchy);
  core::PbseDriver driver(module, "main");
  const bool prepared = driver.prepare({'P', 'B', 200, 10, 0, 0});
  ASSERT_TRUE(prepared);
  driver.run(500'000);
  EXPECT_GT(driver.executor().num_covered(), 10u);
}

}  // namespace
}  // namespace pbse
