// Solver soundness properties, checked against exhaustive enumeration on
// small domains: kSat answers must come with genuinely satisfying models,
// kUnsat answers must have no solution at all — plus the subsumption
// layer's contracts (DESIGN.md §10): an interpolant kill may only hit
// genuinely infeasible constraint sets, pruning may never change WHICH
// blocks get covered on an exhaustively-explored program, and the
// --no-subsumption path must be bit-identical to the pre-change engine.
#include <gtest/gtest.h>

#include "core/driver.h"
#include "expr/evaluator.h"
#include "solver/interpolant.h"
#include "solver/solver.h"
#include "support/rng.h"
#include "targets/targets.h"

namespace pbse {
namespace {

ArrayRef make_array() {
  static int counter = 0;
  return std::make_shared<Array>("p" + std::to_string(counter++), 4);
}

/// A random width-1 constraint over two chosen bytes of `array` (and
/// constants), built from a small grammar.
ExprRef random_constraint_on(const ArrayRef& array, std::uint32_t i0,
                             std::uint32_t i1, Rng& rng) {
  const ExprRef b0 = mk_zext(mk_read(array, i0), 16);
  const ExprRef b1 = mk_zext(mk_read(array, i1), 16);
  auto random_term = [&]() -> ExprRef {
    switch (rng.below(6)) {
      case 0: return b0;
      case 1: return b1;
      case 2: return mk_add(b0, b1);
      case 3: return mk_mul(b0, mk_const(rng.below(7) + 1, 16));
      case 4: return mk_xor(b0, b1);
      default: return mk_or(b0, mk_shl(b1, mk_const(8, 16)));
    }
  };
  const ExprRef lhs = random_term();
  const ExprRef rhs = rng.below(2) == 0
                          ? mk_const(rng.below(600), 16)
                          : random_term();
  switch (rng.below(4)) {
    case 0: return mk_eq(lhs, rhs);
    case 1: return mk_ult(lhs, rhs);
    case 2: return mk_ule(lhs, rhs);
    default: return mk_ne(lhs, rhs);
  }
}

ExprRef random_constraint(const ArrayRef& array, Rng& rng) {
  return random_constraint_on(array, 0, 1, rng);
}

/// Ground truth by brute force over a 2-byte domain.
bool exhaustively_satisfiable_on(const ArrayRef& array, std::uint32_t i0,
                                 std::uint32_t i1,
                                 const std::vector<ExprRef>& constraints) {
  Assignment a;
  auto& bytes = a.mutable_bytes(array);
  for (unsigned v0 = 0; v0 < 256; ++v0) {
    for (unsigned v1 = 0; v1 < 256; ++v1) {
      bytes[i0] = static_cast<std::uint8_t>(v0);
      bytes[i1] = static_cast<std::uint8_t>(v1);
      bool all = true;
      for (const auto& c : constraints) {
        if (!evaluate_bool(c, a)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
  }
  return false;
}

bool exhaustively_satisfiable(const ArrayRef& array,
                              const std::vector<ExprRef>& constraints) {
  return exhaustively_satisfiable_on(array, 0, 1, constraints);
}

class SolverSoundness : public ::testing::TestWithParam<std::uint64_t> {};

// Replicates the executor's usage contract: the path constraint set always
// stays satisfiable, a current model satisfying it is maintained, and each
// new branch condition is queried with that model as the hint. check_sat's
// returned model only covers the independent slice, so — like the executor
// — we overlay it on the current model.
TEST_P(SolverSoundness, MatchesExhaustiveEnumeration) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    auto array = make_array();
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);

    ConstraintSet cs;
    std::vector<ExprRef> accepted;
    auto current = std::make_shared<Assignment>();

    const std::size_t n = 2 + rng.below(4);
    for (std::size_t i = 0; i < n; ++i) {
      const ExprRef query = random_constraint(array, rng);

      std::vector<ExprRef> with_query = accepted;
      with_query.push_back(query);
      const bool truth = exhaustively_satisfiable(array, with_query);

      Assignment model(*current);  // overlay target, seeded from current
      const SolverResult result = solver.check_sat(cs, query, &model, current);

      if (result == SolverResult::kSat) {
        EXPECT_TRUE(truth) << "solver claimed SAT on an UNSAT extension of a "
                              "satisfiable path: "
                           << query->to_string();
        if (!truth) continue;
        // Take the branch: the overlaid model must satisfy everything.
        cs.add(query);
        accepted.push_back(query);
        current = std::make_shared<Assignment>(std::move(model));
        for (const auto& c : accepted)
          EXPECT_TRUE(evaluate_bool(c, *current))
              << "overlaid model violates " << c->to_string();
      } else if (result == SolverResult::kUnsat) {
        EXPECT_FALSE(truth) << "solver claimed UNSAT on a SAT extension: "
                            << query->to_string();
      }
      // kUnknown is always acceptable (budget exhaustion).
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSoundness,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull));

// --- Slicing equivalence ----------------------------------------------------

class SlicingEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

// Independence slicing (and the whole partition-keyed reuse pipeline built
// on it) must never change a verdict. Two solvers — slicing on and off —
// walk the same random path over two DISJOINT byte pairs (two independence
// partitions); every definite answer from either solver must match the
// pairwise exhaustive ground truth. The path invariant "cs stays
// satisfiable" is maintained the same way the executor does: a query is
// added only when it keeps its pair satisfiable.
TEST_P(SlicingEquivalence, SlicingNeverChangesTheVerdict) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    auto array = make_array();
    VClock clock_a, clock_b;
    Stats stats_a, stats_b;
    SolverOptions unsliced;
    unsliced.use_independence = false;
    Solver sliced_solver(clock_a, stats_a);
    Solver unsliced_solver(clock_b, stats_b, unsliced);

    ConstraintSet cs_sliced, cs_unsliced;
    // Accepted constraints per byte pair: (0,1) and (2,3).
    std::vector<ExprRef> accepted[2];

    const std::size_t n = 3 + rng.below(4);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t pair = rng.below(2);
      const std::uint32_t i0 = pair * 2, i1 = pair * 2 + 1;
      const ExprRef query = random_constraint_on(array, i0, i1, rng);

      std::vector<ExprRef> with_query = accepted[pair];
      with_query.push_back(query);
      const bool truth =
          exhaustively_satisfiable_on(array, i0, i1, with_query);

      Assignment model_s, model_u;
      const SolverResult rs = sliced_solver.check_sat(cs_sliced, query,
                                                      &model_s);
      const SolverResult ru = unsliced_solver.check_sat(cs_unsliced, query,
                                                        &model_u);
      if (rs != SolverResult::kUnknown)
        EXPECT_EQ(rs == SolverResult::kSat, truth)
            << "sliced verdict wrong for " << query->to_string();
      if (ru != SolverResult::kUnknown)
        EXPECT_EQ(ru == SolverResult::kSat, truth)
            << "unsliced verdict wrong for " << query->to_string();
      if (rs != SolverResult::kUnknown && ru != SolverResult::kUnknown)
        EXPECT_EQ(rs, ru) << "slicing changed the verdict for "
                          << query->to_string();

      if (truth) {
        cs_sliced.add(query);
        cs_unsliced.add(query);
        accepted[pair].push_back(query);
      }
    }
    EXPECT_EQ(cs_sliced.hash(), cs_unsliced.hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicingEquivalence,
                         ::testing::Values(7ull, 17ull, 27ull, 37ull));

// --- Cross-partition expressions (Concat / Select) --------------------------

// A Concat whose operands read DIFFERENT byte regions must union those
// regions into one partition: a conflict reachable only through the concat
// constraint has to surface on a query that mentions just one side.
TEST(SolverCrossPartition, ConcatLinksItsOperandPartitions) {
  auto array = std::make_shared<Array>("xp", 8);
  const ExprRef b0 = mk_read(array, 0);
  const ExprRef b4 = mk_read(array, 4);
  ConstraintSet cs;
  // Bytes 0 and 4 start in separate partitions...
  cs.add(mk_ule(b0, mk_const(0x10, 8)));
  cs.add(mk_ule(b4, mk_const(0x10, 8)));
  ASSERT_EQ(cs.num_partitions(), 2u);
  // ...until a concat constraint spans both.
  cs.add(mk_eq(mk_concat(b0, b4), mk_const(0x0102, 16)));
  EXPECT_EQ(cs.num_partitions(), 1u);

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  // SAT direction: b0 == 1 (and implicitly b4 == 2).
  Assignment model;
  ASSERT_EQ(solver.check_sat(cs, mk_eq(b0, mk_const(1, 8)), &model),
            SolverResult::kSat);
  EXPECT_EQ(model.byte(array.get(), 4), 2);
  // UNSAT direction: the conflict with b4 flows through the concat — the
  // slice for a b4-only query must include all three constraints.
  EXPECT_EQ(solver.check_sat(cs, mk_eq(b4, mk_const(3, 8))),
            SolverResult::kUnsat);
  const auto slice = cs.slice(mk_eq(b4, mk_const(3, 8)));
  EXPECT_EQ(slice.constraints.size(), 3u);
  EXPECT_EQ(slice.partitions.size(), 1u);
}

// Select reads BOTH branches' sites (its value can depend on any of them),
// so a select constraint must merge the condition's and both arms'
// partitions, and verdicts must account for either arm.
TEST(SolverCrossPartition, SelectMergesConditionAndArmPartitions) {
  auto array = std::make_shared<Array>("xps", 8);
  const ExprRef cond = mk_ult(mk_read(array, 0), mk_const(0x80, 8));
  const ExprRef then_e = mk_read(array, 2);
  const ExprRef else_e = mk_read(array, 4);
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 2), mk_const(5, 8)));
  cs.add(mk_eq(mk_read(array, 4), mk_const(9, 8)));
  ASSERT_EQ(cs.num_partitions(), 2u);
  cs.add(mk_eq(mk_select(cond, then_e, else_e), mk_const(5, 8)));
  EXPECT_EQ(cs.num_partitions(), 1u);

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  // Feasible only via the THEN arm: byte0 < 0x80 must be derivable.
  Assignment model;
  ASSERT_EQ(solver.check_sat(cs, mk_ult(mk_read(array, 0), mk_const(0x80, 8)),
                             &model),
            SolverResult::kSat);
  EXPECT_EQ(model.byte(array.get(), 2), 5);
  // The ELSE arm would need select == 9, contradicting the select
  // constraint; byte0 >= 0x80 is therefore infeasible, and discovering
  // that requires the sliced query to drag in all three constraints.
  EXPECT_EQ(solver.check_sat(cs, mk_uge(mk_read(array, 0), mk_const(0x80, 8))),
            SolverResult::kUnsat);
}

// Re-querying after a partition's content changed must not resurrect stale
// partition-keyed results: the cached model for the OLD partition content
// fails replay verification, and the verdict stays correct.
TEST(SolverCrossPartition, PartitionReuseSurvivesContentChanges) {
  auto array = std::make_shared<Array>("xpr", 4);
  const ExprRef b0 = mk_read(array, 0);
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  ConstraintSet cs;
  cs.add(mk_ult(mk_const(0x40, 8), b0));
  Assignment m1;
  ASSERT_EQ(solver.check_sat(cs, mk_ult(b0, mk_const(0x80, 8)), &m1),
            SolverResult::kSat);
  cs.add(mk_ult(b0, mk_const(0x80, 8)));
  // Narrow the same partition further; any model cached above that chose
  // a byte >= 0x60 must be rejected by replay, not trusted.
  cs.add(mk_ult(b0, mk_const(0x60, 8)));
  Assignment m2;
  ASSERT_EQ(solver.check_sat(cs, mk_ult(mk_const(0x50, 8), b0), &m2),
            SolverResult::kSat);
  EXPECT_GT(m2.byte(array.get(), 0), 0x50);
  EXPECT_LT(m2.byte(array.get(), 0), 0x60);
  EXPECT_EQ(solver.check_sat(cs, mk_ult(mk_const(0x60, 8), b0)),
            SolverResult::kUnsat);
}

TEST(SolverDeferredEquality, ChecksumBytesAreBackComputed) {
  // Eq(sum-of-data, stored-assembly) where the stored bytes appear nowhere
  // else: elimination must defer it and complete the model afterwards.
  auto array = std::make_shared<Array>("ck", 16);
  ExprRef sum = mk_const(0, 32);
  for (int i = 0; i < 4; ++i)
    sum = mk_add(sum, mk_zext(mk_read(array, i), 32));
  ExprRef stored = mk_zext(mk_read(array, 8), 32);
  for (int b = 1; b < 4; ++b)
    stored = mk_or(stored, mk_shl(mk_zext(mk_read(array, 8 + b), 32),
                                  mk_const(8 * b, 32)));
  ConstraintSet cs;
  cs.add(mk_eq(sum, stored));
  cs.add(mk_eq(mk_read(array, 0), mk_const(200, 8)));

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  Assignment model;
  ASSERT_EQ(solver.check_sat(cs, mk_eq(mk_read(array, 1), mk_const(250, 8)),
                             &model),
            SolverResult::kSat);
  EXPECT_GE(stats.get("solver.deferred_eqs"), 1u);
  EXPECT_EQ(evaluate(sum, model), evaluate(stored, model))
      << "checksum must hold after back-computation";
  EXPECT_EQ(model.byte(array.get(), 0), 200);
  EXPECT_EQ(model.byte(array.get(), 1), 250);
}

TEST(SolverDeferredEquality, NegatedChecksumPicksDifferentValue) {
  auto array = std::make_shared<Array>("ck2", 16);
  const ExprRef data = mk_zext(mk_read(array, 0), 32);
  ExprRef stored = mk_zext(mk_read(array, 8), 32);
  for (int b = 1; b < 4; ++b)
    stored = mk_or(stored, mk_shl(mk_zext(mk_read(array, 8 + b), 32),
                                  mk_const(8 * b, 32)));
  ConstraintSet cs;
  cs.add(mk_ne(data, stored));  // "crc mismatch" path constraint

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  Assignment model;
  ASSERT_EQ(solver.check_sat(cs, mk_eq(mk_read(array, 0), mk_const(7, 8)),
                             &model),
            SolverResult::kSat);
  EXPECT_NE(evaluate(data, model), evaluate(stored, model));
}

TEST(SolverDeferredEquality, SharedBytesAreNotDeferred) {
  // The "stored" bytes also appear in another constraint: deferring them
  // would be unsound, so the solver must keep the equality in the search.
  auto array = std::make_shared<Array>("ck3", 16);
  const ExprRef data =
      mk_or(mk_zext(mk_read(array, 0), 16),
            mk_shl(mk_zext(mk_read(array, 1), 16), mk_const(8, 16)));
  const ExprRef stored =
      mk_or(mk_zext(mk_read(array, 8), 16),
            mk_shl(mk_zext(mk_read(array, 9), 16), mk_const(8, 16)));
  ConstraintSet cs;
  cs.add(mk_eq(data, stored));
  cs.add(mk_ult(mk_const(0x1234, 16), stored));  // second use of the bytes

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  Assignment model;
  const auto result =
      solver.check_sat(cs, mk_ule(data, mk_const(0xFFFE, 16)), &model);
  ASSERT_EQ(result, SolverResult::kSat);
  EXPECT_EQ(stats.get("solver.deferred_eqs"), 0u);
  EXPECT_EQ(evaluate(data, model), evaluate(stored, model));
  EXPECT_GT(evaluate(stored, model), 0x1234u);
}

// --- Interpolant subsumption (DESIGN.md §10) --------------------------------

class InterpolantSoundness : public ::testing::TestWithParam<std::uint64_t> {};

// The UNSAT-interpolant kill contract: whenever unsat_subsumes() claims a
// constraint set is covered by a filed core, that set must be genuinely
// unsatisfiable — a state killed by it could execute nothing at all, so it
// trivially cannot cover any block its subsumer could not reach. Cores are
// filed by the real pipeline (publish_unsat via check_sat with an
// interpolant location), then probed with supersets, subsets, and
// unrelated random sets; every positive answer is checked against
// exhaustive enumeration.
TEST_P(InterpolantSoundness, UnsatSubsumedSetsAreTrulyUnsat) {
  Rng rng(GetParam());
  int positives = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto array = make_array();
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);
    solver.set_interpolant_location(42);

    ConstraintSet cs;
    std::vector<ExprRef> accepted;
    // Walk a random satisfiable path, remembering the UNSAT branches the
    // solver proved (and therefore filed interpolants for).
    for (int i = 0; i < 8; ++i) {
      const ExprRef query = random_constraint(array, rng);
      Assignment model;
      const SolverResult r = solver.check_sat(cs, query, &model);
      if (r == SolverResult::kSat) {
        std::vector<ExprRef> with = accepted;
        with.push_back(query);
        if (exhaustively_satisfiable(array, with)) {
          cs.add(query);
          accepted.push_back(query);
        }
      }
    }
    if (solver.interpolants().num_unsat_locations() == 0) continue;

    // Probe random candidate sets; every subsumption claim must be backed
    // by ground-truth infeasibility.
    for (int probe = 0; probe < 20; ++probe) {
      ConstraintSet candidate;
      std::vector<ExprRef> members;
      const std::size_t n = 1 + rng.below(6);
      for (std::size_t k = 0; k < n; ++k) {
        const ExprRef c = random_constraint(array, rng);
        if (candidate.add(c)) members.push_back(c);
      }
      // Half the probes extend the path that produced the cores, making
      // superset hits likely; the rest stay fully random.
      if (probe % 2 == 0) {
        for (const auto& c : accepted)
          if (candidate.add(c)) members.push_back(c);
      }
      if (solver.interpolants().unsat_subsumes(42,
                                               candidate.sorted_hashes())) {
        ++positives;
        EXPECT_FALSE(exhaustively_satisfiable(array, members))
            << "interpolant subsumed a satisfiable constraint set";
      }
    }
  }
  // The probe distribution must actually exercise the kill path.
  EXPECT_GT(positives, 0) << "no probe ever matched an interpolant";
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpolantSoundness,
                         ::testing::Values(3ull, 13ull, 23ull));

// Bounded-table mechanics: per-key entries are capped and deduplicated,
// the key count is capped by a wholesale clear, and subset matching is
// exact (no false positive on a disjoint set).
TEST(InterpolantTable, BoundedAndExact) {
  InterpolantTable table;
  table.add_barren(7, {10, 20, 30});
  EXPECT_TRUE(table.barren_subsumes(7, {10, 20, 30, 40}));
  EXPECT_FALSE(table.barren_subsumes(7, {10, 20}));       // smaller than core
  EXPECT_FALSE(table.barren_subsumes(7, {11, 21, 31, 41}));  // disjoint
  EXPECT_FALSE(table.barren_subsumes(8, {10, 20, 30}));   // other location
  for (std::uint64_t i = 0; i < 100; ++i)
    table.add_barren(7, {i, i + 1, i + 2, i + 3});
  // kMaxPerKey bounds the per-location list; the first (smallest) core
  // must survive the bounded insertion policy.
  EXPECT_TRUE(table.barren_subsumes(7, {10, 20, 30, 99}));
  EXPECT_EQ(table.num_barren_keys(), 1u);
}

// The tentpole property, end to end: subsumption-killed states never cover
// a block their subsumer could not reach. Operational form: on this
// workload the pruned engine EXHAUSTS the state space (hundreds of barren
// kills, run ends well inside the budget) while the unpruned engine is
// still coasting at the full budget — and the two runs cover the IDENTICAL
// block set. Every kill therefore discarded only work whose coverage the
// surviving states delivered anyway. The stall gate is set conservatively
// here (256) because that is the regime where the heuristic class provably
// preserves the covered set on an exhausted space; the shipping default
// (16) trades kill aggressiveness against coverage and is gated
// empirically by the subsumption ablation, not by this test.
TEST(Subsumption, PrunedExhaustionCoversEverythingTheFullSearchFinds) {
  constexpr std::uint64_t kBudget = 12'000'000;
  auto run = [&](bool pruning) {
    ir::Module module = targets::build_target(targets::readelf_source());
    core::KleeRunOptions options;
    options.sym_file_size = 40;
    options.executor.use_subsumption = pruning;
    options.executor.use_fingerprint_dedup = pruning;
    options.executor.subsumption_min_stall = 256;
    core::KleeRun run(module, "main", options);
    run.run(kBudget);
    if (pruning) {
      // Non-vacuity: the kill path must actually fire, and firing must be
      // what lets the run drain the space inside the budget.
      EXPECT_LT(run.clock().now(), kBudget)
          << "pruned exploration must exhaust inside the budget";
      EXPECT_GT(run.stats().get("executor.subsumed_barren"), 100u);
    }
    return run.executor().covered();
  };
  EXPECT_EQ(run(true), run(false))
      << "pruning lost a block the unpruned search covered";
}

// Off-mode parity: with both flags off the engine must not merely be
// deterministic, it must do ZERO subsumption work (no counters, no
// interpolants) — the committed golden then pins it to the pre-change
// engine tick for tick. And with subsumption ON but no kill ever firing
// (stall gate at infinity, no duplicate states on this workload), the
// probes themselves must be tick-free: identical coverage, ticks and bugs.
TEST(Subsumption, NoSubsumptionRunsAreTickIdenticalToProbeOnlyRuns) {
  ir::Module module_a = targets::build_target(targets::readelf_source());
  ir::Module module_b = targets::build_target(targets::readelf_source());
  auto run = [](const ir::Module& module, bool subsumption) {
    core::KleeRunOptions options;
    options.sym_file_size = 200;
    options.executor.use_subsumption = subsumption;
    options.executor.use_fingerprint_dedup = false;
    options.executor.subsumption_min_stall = ~std::uint64_t{0};
    core::KleeRun run(module, "main", options);
    run.run(400'000);
    EXPECT_EQ(run.stats().get("executor.term_subsumed"), 0u);
    if (!subsumption) {
      EXPECT_EQ(run.stats().get("solver.interpolants_published"), 0u);
      EXPECT_EQ(run.stats().get("executor.barren_recorded"), 0u);
    }
    return std::make_tuple(run.executor().num_covered(), run.clock().now(),
                           run.executor().bugs().size(),
                           run.executor().test_cases().size());
  };
  EXPECT_EQ(run(module_a, false), run(module_b, true))
      << "block-entry probes must never consume virtual time";
}

}  // namespace
}  // namespace pbse
