// Solver soundness properties, checked against exhaustive enumeration on
// small domains: kSat answers must come with genuinely satisfying models,
// kUnsat answers must have no solution at all.
#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "solver/solver.h"
#include "support/rng.h"

namespace pbse {
namespace {

ArrayRef make_array() {
  static int counter = 0;
  return std::make_shared<Array>("p" + std::to_string(counter++), 4);
}

/// A random width-1 constraint over the two bytes of `array` (and
/// constants), built from a small grammar.
ExprRef random_constraint(const ArrayRef& array, Rng& rng) {
  const ExprRef b0 = mk_zext(mk_read(array, 0), 16);
  const ExprRef b1 = mk_zext(mk_read(array, 1), 16);
  auto random_term = [&]() -> ExprRef {
    switch (rng.below(6)) {
      case 0: return b0;
      case 1: return b1;
      case 2: return mk_add(b0, b1);
      case 3: return mk_mul(b0, mk_const(rng.below(7) + 1, 16));
      case 4: return mk_xor(b0, b1);
      default: return mk_or(b0, mk_shl(b1, mk_const(8, 16)));
    }
  };
  const ExprRef lhs = random_term();
  const ExprRef rhs = rng.below(2) == 0
                          ? mk_const(rng.below(600), 16)
                          : random_term();
  switch (rng.below(4)) {
    case 0: return mk_eq(lhs, rhs);
    case 1: return mk_ult(lhs, rhs);
    case 2: return mk_ule(lhs, rhs);
    default: return mk_ne(lhs, rhs);
  }
}

/// Ground truth by brute force over the 2-byte domain.
bool exhaustively_satisfiable(const ArrayRef& array,
                              const std::vector<ExprRef>& constraints) {
  Assignment a;
  auto& bytes = a.mutable_bytes(array);
  for (unsigned v0 = 0; v0 < 256; ++v0) {
    for (unsigned v1 = 0; v1 < 256; ++v1) {
      bytes[0] = static_cast<std::uint8_t>(v0);
      bytes[1] = static_cast<std::uint8_t>(v1);
      bool all = true;
      for (const auto& c : constraints) {
        if (!evaluate_bool(c, a)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
  }
  return false;
}

class SolverSoundness : public ::testing::TestWithParam<std::uint64_t> {};

// Replicates the executor's usage contract: the path constraint set always
// stays satisfiable, a current model satisfying it is maintained, and each
// new branch condition is queried with that model as the hint. check_sat's
// returned model only covers the independent slice, so — like the executor
// — we overlay it on the current model.
TEST_P(SolverSoundness, MatchesExhaustiveEnumeration) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    auto array = make_array();
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);

    ConstraintSet cs;
    std::vector<ExprRef> accepted;
    auto current = std::make_shared<Assignment>();

    const std::size_t n = 2 + rng.below(4);
    for (std::size_t i = 0; i < n; ++i) {
      const ExprRef query = random_constraint(array, rng);

      std::vector<ExprRef> with_query = accepted;
      with_query.push_back(query);
      const bool truth = exhaustively_satisfiable(array, with_query);

      Assignment model(*current);  // overlay target, seeded from current
      const SolverResult result = solver.check_sat(cs, query, &model, current);

      if (result == SolverResult::kSat) {
        EXPECT_TRUE(truth) << "solver claimed SAT on an UNSAT extension of a "
                              "satisfiable path: "
                           << query->to_string();
        if (!truth) continue;
        // Take the branch: the overlaid model must satisfy everything.
        cs.add(query);
        accepted.push_back(query);
        current = std::make_shared<Assignment>(std::move(model));
        for (const auto& c : accepted)
          EXPECT_TRUE(evaluate_bool(c, *current))
              << "overlaid model violates " << c->to_string();
      } else if (result == SolverResult::kUnsat) {
        EXPECT_FALSE(truth) << "solver claimed UNSAT on a SAT extension: "
                            << query->to_string();
      }
      // kUnknown is always acceptable (budget exhaustion).
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSoundness,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull));

TEST(SolverDeferredEquality, ChecksumBytesAreBackComputed) {
  // Eq(sum-of-data, stored-assembly) where the stored bytes appear nowhere
  // else: elimination must defer it and complete the model afterwards.
  auto array = std::make_shared<Array>("ck", 16);
  ExprRef sum = mk_const(0, 32);
  for (int i = 0; i < 4; ++i)
    sum = mk_add(sum, mk_zext(mk_read(array, i), 32));
  ExprRef stored = mk_zext(mk_read(array, 8), 32);
  for (int b = 1; b < 4; ++b)
    stored = mk_or(stored, mk_shl(mk_zext(mk_read(array, 8 + b), 32),
                                  mk_const(8 * b, 32)));
  ConstraintSet cs;
  cs.add(mk_eq(sum, stored));
  cs.add(mk_eq(mk_read(array, 0), mk_const(200, 8)));

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  Assignment model;
  ASSERT_EQ(solver.check_sat(cs, mk_eq(mk_read(array, 1), mk_const(250, 8)),
                             &model),
            SolverResult::kSat);
  EXPECT_GE(stats.get("solver.deferred_eqs"), 1u);
  EXPECT_EQ(evaluate(sum, model), evaluate(stored, model))
      << "checksum must hold after back-computation";
  EXPECT_EQ(model.byte(array.get(), 0), 200);
  EXPECT_EQ(model.byte(array.get(), 1), 250);
}

TEST(SolverDeferredEquality, NegatedChecksumPicksDifferentValue) {
  auto array = std::make_shared<Array>("ck2", 16);
  const ExprRef data = mk_zext(mk_read(array, 0), 32);
  ExprRef stored = mk_zext(mk_read(array, 8), 32);
  for (int b = 1; b < 4; ++b)
    stored = mk_or(stored, mk_shl(mk_zext(mk_read(array, 8 + b), 32),
                                  mk_const(8 * b, 32)));
  ConstraintSet cs;
  cs.add(mk_ne(data, stored));  // "crc mismatch" path constraint

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  Assignment model;
  ASSERT_EQ(solver.check_sat(cs, mk_eq(mk_read(array, 0), mk_const(7, 8)),
                             &model),
            SolverResult::kSat);
  EXPECT_NE(evaluate(data, model), evaluate(stored, model));
}

TEST(SolverDeferredEquality, SharedBytesAreNotDeferred) {
  // The "stored" bytes also appear in another constraint: deferring them
  // would be unsound, so the solver must keep the equality in the search.
  auto array = std::make_shared<Array>("ck3", 16);
  const ExprRef data =
      mk_or(mk_zext(mk_read(array, 0), 16),
            mk_shl(mk_zext(mk_read(array, 1), 16), mk_const(8, 16)));
  const ExprRef stored =
      mk_or(mk_zext(mk_read(array, 8), 16),
            mk_shl(mk_zext(mk_read(array, 9), 16), mk_const(8, 16)));
  ConstraintSet cs;
  cs.add(mk_eq(data, stored));
  cs.add(mk_ult(mk_const(0x1234, 16), stored));  // second use of the bytes

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  Assignment model;
  const auto result =
      solver.check_sat(cs, mk_ule(data, mk_const(0xFFFE, 16)), &model);
  ASSERT_EQ(result, SolverResult::kSat);
  EXPECT_EQ(stats.get("solver.deferred_eqs"), 0u);
  EXPECT_EQ(evaluate(data, model), evaluate(stored, model));
  EXPECT_GT(evaluate(stored, model), 0x1234u);
}

}  // namespace
}  // namespace pbse
