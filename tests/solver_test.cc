// Solver subsystem: constraint sets, independence slicing, domain
// propagation (pin_equality, interval arithmetic, prune_ule), the
// backtracking search, the facade's caches and budgets.
#include <gtest/gtest.h>

#include "solver/constraint_set.h"
#include "solver/independence.h"
#include "solver/interval.h"
#include "solver/solver.h"

namespace pbse {
namespace {

ArrayRef make_array(std::uint32_t size = 64) {
  static int counter = 0;
  return std::make_shared<Array>("s" + std::to_string(counter++), size);
}

ExprRef u16_at(const ArrayRef& array, std::uint32_t i, unsigned width = 32) {
  return mk_or(mk_zext(mk_read(array, i), width),
               mk_shl(mk_zext(mk_read(array, i + 1), width),
                      mk_const(8, width)));
}

ExprRef u32_at(const ArrayRef& array, std::uint32_t i) {
  ExprRef v = mk_zext(mk_read(array, i), 32);
  for (unsigned b = 1; b < 4; ++b)
    v = mk_or(v, mk_shl(mk_zext(mk_read(array, i + b), 32),
                        mk_const(8 * b, 32)));
  return v;
}

struct SolverFixture {
  VClock clock;
  Stats stats;
  Solver solver{clock, stats};
};

// --- ConstraintSet ----------------------------------------------------------

TEST(ConstraintSet, DeduplicatesAndDropsTrue) {
  auto array = make_array();
  ConstraintSet cs;
  const ExprRef c = mk_eq(mk_read(array, 0), mk_const(1, 8));
  EXPECT_TRUE(cs.add(c));
  EXPECT_TRUE(cs.add(c));
  EXPECT_TRUE(cs.add(mk_bool(true)));
  EXPECT_EQ(cs.size(), 1u);
  EXPECT_FALSE(cs.add(mk_bool(false)));
  EXPECT_TRUE(cs.contains(c));
}

TEST(ConstraintSet, HashIsOrderInsensitive) {
  auto array = make_array();
  const ExprRef a = mk_eq(mk_read(array, 0), mk_const(1, 8));
  const ExprRef b = mk_eq(mk_read(array, 1), mk_const(2, 8));
  ConstraintSet ab, ba;
  ab.add(a);
  ab.add(b);
  ba.add(b);
  ba.add(a);
  EXPECT_EQ(ab.hash(), ba.hash());
}

// --- Independence slicing ---------------------------------------------------

TEST(Independence, KeepsOnlyConnectedConstraints) {
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 0), mk_const(1, 8)));     // byte 0
  cs.add(mk_eq(mk_read(array, 10), mk_const(2, 8)));    // byte 10
  cs.add(mk_ult(mk_read(array, 0), mk_read(array, 1))); // bytes 0,1
  const auto slice =
      independent_slice(cs, mk_eq(mk_read(array, 1), mk_const(9, 8)));
  // Byte 1 connects to {0,1} which connects to {0}; byte 10 is independent.
  EXPECT_EQ(slice.size(), 2u);
}

TEST(Independence, TransitiveClosureThroughSharedBytes) {
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_ult(mk_read(array, 0), mk_read(array, 1)));
  cs.add(mk_ult(mk_read(array, 1), mk_read(array, 2)));
  cs.add(mk_ult(mk_read(array, 2), mk_read(array, 3)));
  const auto slice =
      independent_slice(cs, mk_eq(mk_read(array, 3), mk_const(9, 8)));
  EXPECT_EQ(slice.size(), 3u) << "chain must be pulled in transitively";
}

// --- Persistent partitions --------------------------------------------------

TEST(ConstraintSet, MaintainsPartitionsIncrementally) {
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 0), mk_const(1, 8)));
  cs.add(mk_eq(mk_read(array, 10), mk_const(2, 8)));
  EXPECT_EQ(cs.num_partitions(), 2u);
  // Bridging constraint merges the two partitions.
  cs.add(mk_ult(mk_read(array, 0), mk_read(array, 10)));
  EXPECT_EQ(cs.num_partitions(), 1u);
  const auto slice = cs.slice(mk_eq(mk_read(array, 10), mk_const(9, 8)));
  EXPECT_EQ(slice.constraints.size(), 3u);
  ASSERT_EQ(slice.partitions.size(), 1u);
}

TEST(ConstraintSet, PartitionHashIsContentBased) {
  // Two sets built in different orders over same-shape arrays must agree
  // on partition hashes — the property L2 partition sharing relies on.
  auto a1 = std::make_shared<Array>("part", 16);
  auto a2 = std::make_shared<Array>("part", 16);
  const auto build = [](const ArrayRef& a, bool swap) {
    ConstraintSet cs;
    const ExprRef c1 = mk_eq(mk_read(a, 0), mk_const(1, 8));
    const ExprRef c2 = mk_ult(mk_read(a, 3), mk_const(7, 8));
    cs.add(swap ? c2 : c1);
    cs.add(swap ? c1 : c2);
    return cs;
  };
  const ConstraintSet cs1 = build(a1, false);
  const ConstraintSet cs2 = build(a2, true);
  const auto s1 = cs1.slice(mk_eq(mk_read(a1, 0), mk_const(9, 8)));
  const auto s2 = cs2.slice(mk_eq(mk_read(a2, 0), mk_const(9, 8)));
  ASSERT_EQ(s1.partitions.size(), 1u);
  EXPECT_EQ(s1.partitions, s2.partitions);
}

TEST(ConstraintSet, SliceOfUnconstrainedQueryIsEmpty) {
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 0), mk_const(1, 8)));
  const auto slice = cs.slice(mk_eq(mk_read(array, 20), mk_const(3, 8)));
  EXPECT_TRUE(slice.constraints.empty());
  EXPECT_TRUE(slice.partitions.empty());
  const auto whole = cs.whole();
  EXPECT_EQ(whole.constraints.size(), 1u);
  EXPECT_EQ(whole.partitions.size(), 1u);
}

TEST(ConstraintSet, PartitionsSurviveValueCopy) {
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_ult(mk_read(array, 0), mk_read(array, 1)));
  ConstraintSet forked = cs;  // state fork
  forked.add(mk_ult(mk_read(array, 1), mk_read(array, 2)));
  EXPECT_EQ(cs.num_partitions(), 1u);
  EXPECT_EQ(forked.num_partitions(), 1u);
  EXPECT_EQ(cs.slice(mk_eq(mk_read(array, 2), mk_const(1, 8)))
                .constraints.size(),
            0u)
      << "fork must not leak partitions back into the parent";
  EXPECT_EQ(forked.slice(mk_eq(mk_read(array, 2), mk_const(1, 8)))
                .constraints.size(),
            2u);
}

// --- CexStore ---------------------------------------------------------------

TEST(CexStore, DedupesAndBoundsModels) {
  auto array = make_array();
  CexStore store;
  ModelBytes m{{array, std::vector<std::uint8_t>{1, 2, 3}}};
  store.add_model(7, m);
  store.add_model(7, m);  // duplicate
  EXPECT_EQ(store.num_models(), 1u);
  for (std::uint8_t i = 0; i < 2 * CexStore::kMaxPerKey; ++i)
    store.add_model(7, {{array, std::vector<std::uint8_t>{i}}});
  EXPECT_EQ(store.num_models(), CexStore::kMaxPerKey);
  ASSERT_NE(store.models(7), nullptr);
  EXPECT_EQ(store.models(8), nullptr);
}

TEST(CexStore, KeepsSmallestUnsatCores) {
  CexStore store;
  // Overfill with cores of decreasing size; the store must retain the
  // small ones (they subsume the most supersets).
  for (std::uint64_t n = CexStore::kMaxPerKey + 4; n > 0; --n) {
    std::vector<std::uint64_t> core;
    for (std::uint64_t i = 0; i < n; ++i) core.push_back(1000 * n + i);
    store.add_unsat_core(3, core);
  }
  EXPECT_EQ(store.num_cores(), CexStore::kMaxPerKey);
  const auto* cores = store.unsat_cores(3);
  ASSERT_NE(cores, nullptr);
  for (std::size_t i = 1; i < cores->size(); ++i)
    EXPECT_LE((*cores)[i - 1].size(), (*cores)[i].size());
  EXPECT_EQ(cores->front().size(), 1u);
}

// --- Incremental pipeline hit classes ---------------------------------------

TEST(SolverIncremental, UnsatCoreSubsumesGrownPartition) {
  // A loop-shaped workload: the same infeasible exit is re-queried while
  // its partition keeps growing. The first proof files a core; later
  // supersets must resolve by subsumption, not search.
  auto array = make_array();
  SolverFixture f;
  const ExprRef b0 = mk_read(array, 0);
  ConstraintSet cs;
  cs.add(mk_ult(b0, mk_const(0x10, 8)));
  const ExprRef exit_q = mk_ult(mk_const(0x20, 8), b0);
  EXPECT_EQ(f.solver.check_sat(cs, exit_q), SolverResult::kUnsat);
  EXPECT_EQ(f.stats.get("solver.partition_hits"), 0u);

  // The loop takes another iteration: a SAT query lands in the partition.
  const ExprRef stay_q = mk_ult(b0, mk_const(0x0c, 8));
  ASSERT_EQ(f.solver.check_sat(cs, stay_q), SolverResult::kSat);
  cs.add(stay_q);

  // Same exit query, grown list: exact key differs, core subsumes.
  EXPECT_EQ(f.solver.check_sat(cs, exit_q), SolverResult::kUnsat);
  EXPECT_EQ(f.stats.get("solver.partition_hits"), 1u);
}

TEST(SolverIncremental, ReplaysCachedModelInsteadOfSearching) {
  auto array = make_array();
  SolverFixture f;
  const ExprRef b0 = mk_read(array, 0);
  ConstraintSet cs;
  cs.add(mk_ult(mk_const(0x40, 8), b0));
  const ExprRef q1 = mk_ult(b0, mk_const(0x80, 8));
  Assignment m1;
  ASSERT_EQ(f.solver.check_sat(cs, q1, &m1), SolverResult::kSat);
  cs.add(q1);
  const std::uint64_t searches_before = f.stats.get("solver.search_sat");

  // Implied by c1, but not by the all-zeros fast path and not an exact
  // cache hit: must resolve by replaying the cached counterexample.
  const ExprRef q2 = mk_ult(mk_const(0x30, 8), b0);
  Assignment m2;
  ASSERT_EQ(f.solver.check_sat(cs, q2, &m2), SolverResult::kSat);
  EXPECT_GE(f.stats.get("solver.model_reuse"), 1u);
  EXPECT_EQ(f.stats.get("solver.search_sat"), searches_before);
  EXPECT_GT(m2.byte(array.get(), 0), 0x40);
}

TEST(SolverIncremental, DomainMemoSeedsExtensionQueries) {
  auto array = make_array();
  VClock clock;
  Stats stats;
  SolverOptions options;
  options.use_cex_cache = false;  // isolate the memo from model replay
  Solver solver(clock, stats, options);
  const ExprRef b0 = mk_read(array, 0);
  ConstraintSet cs;
  cs.add(mk_ult(mk_const(0x10, 8), b0));
  ASSERT_EQ(solver.check_sat(cs, mk_ult(b0, mk_const(0xF0, 8))),
            SolverResult::kSat);
  EXPECT_GT(solver.domain_memo_size(), 0u);
  cs.add(mk_ult(b0, mk_const(0xF0, 8)));

  // The extension query's prefix is exactly the previous full list.
  ASSERT_EQ(solver.check_sat(cs, mk_ult(b0, mk_const(0xE0, 8))),
            SolverResult::kSat);
  EXPECT_GE(stats.get("solver.domain_memo_hits"), 1u);
}

TEST(SolverIncremental, MemberQueryDoesNotPoisonSiblingMemo) {
  // validate_model's repair path re-checks a constraint that is already a
  // member of the set, so the sliced list already contains the query.
  // Regression: appending it again doubled its hash in the order-
  // insensitive XOR cache key (the duplicate cancels), filing domains
  // narrowed by the query under the key of the list WITHOUT it; a sibling
  // state forked before the constraint was added then seeded those
  // over-narrowed domains from the memo and returned a wrong UNSAT.
  auto array = make_array();
  SolverFixture f;
  const ExprRef b0 = mk_read(array, 0);
  const ExprRef p = mk_ult(b0, mk_const(200, 8));
  const ExprRef q = mk_eq(b0, mk_const(5, 8));
  ConstraintSet with_q;
  with_q.add(p);
  with_q.add(q);
  ASSERT_EQ(f.solver.check_sat(with_q, q), SolverResult::kSat);

  // The sibling's prefix is exactly [p]; b0 == 7 is feasible under it.
  ConstraintSet without_q;
  without_q.add(p);
  Assignment model;
  ASSERT_EQ(f.solver.check_sat(without_q, mk_eq(b0, mk_const(7, 8)), &model),
            SolverResult::kSat);
  EXPECT_EQ(model.byte(array.get(), 0), 7);
}

TEST(SolverIncremental, DomainMemoDeltaChainIsBounded) {
  auto array = make_array();
  VClock clock;
  Stats stats;
  SolverOptions options;
  options.use_cex_cache = false;  // isolate the memo from model replay
  options.max_domain_memo_delta_depth = 2;
  Solver solver(clock, stats, options);
  const ExprRef b0 = mk_read(array, 0);
  ConstraintSet cs;
  cs.add(mk_ult(mk_const(2, 8), b0));
  // Walk a path: each query tightens the bound and joins the set.
  for (unsigned bound = 0xF0; bound >= 0x80; bound -= 0x10) {
    const ExprRef q = mk_ult(b0, mk_const(bound, 8));
    ASSERT_EQ(solver.check_sat(cs, q), SolverResult::kSat);
    cs.add(q);
  }
  // Extensions hit the memo, but not all of them: an entry that has
  // accumulated max_domain_memo_delta_depth delta layers is recomputed
  // from scratch (a miss) instead of being extended further.
  const std::uint64_t hits = stats.get("solver.domain_memo_hits");
  EXPECT_GE(hits, 1u);
  EXPECT_LT(hits, 7u);
}

TEST(SolverIncremental, DisabledFlagsFallBackToBaselinePipeline) {
  auto array = make_array();
  VClock clock;
  Stats stats;
  SolverOptions options;
  options.use_cex_cache = false;
  options.use_domain_memo = false;
  Solver solver(clock, stats, options);
  const ExprRef b0 = mk_read(array, 0);
  ConstraintSet cs;
  cs.add(mk_ult(mk_const(0x40, 8), b0));
  ASSERT_EQ(solver.check_sat(cs, mk_ult(b0, mk_const(0x80, 8))),
            SolverResult::kSat);
  cs.add(mk_ult(b0, mk_const(0x80, 8)));
  ASSERT_EQ(solver.check_sat(cs, mk_ult(mk_const(0x30, 8), b0)),
            SolverResult::kSat);
  EXPECT_EQ(stats.get("solver.model_reuse"), 0u);
  EXPECT_EQ(stats.get("solver.domain_memo_hits"), 0u);
  EXPECT_EQ(solver.domain_memo_size(), 0u);
}

// --- pin_equality -------------------------------------------------------------

TEST(PinEquality, PinsAssembledIntegers) {
  auto array = make_array();
  DomainMap domains;
  bool unsat = false;
  ASSERT_TRUE(pin_equality(u32_at(array, 4), 0xAABBCCDD, domains, unsat));
  EXPECT_FALSE(unsat);
  EXPECT_EQ(domains.find(array.get(), 4)->values(),
            std::vector<std::uint8_t>{0xDD});
  EXPECT_EQ(domains.find(array.get(), 7)->values(),
            std::vector<std::uint8_t>{0xAA});
}

TEST(PinEquality, PeelsConstantAddend) {
  auto array = make_array();
  DomainMap domains;
  bool unsat = false;
  const ExprRef e = mk_add(u16_at(array, 0), mk_const(10, 32));
  ASSERT_TRUE(pin_equality(e, 0x1234 + 10, domains, unsat));
  EXPECT_FALSE(unsat);
  EXPECT_EQ(domains.find(array.get(), 0)->values(),
            std::vector<std::uint8_t>{0x34});
  EXPECT_EQ(domains.find(array.get(), 1)->values(),
            std::vector<std::uint8_t>{0x12});
}

TEST(PinEquality, PowerOfTwoMultiplier) {
  auto array = make_array();
  DomainMap domains;
  bool unsat = false;
  // (zext16(u16) * 16) == 0x120 -> u16 == 0x12.
  const ExprRef e =
      mk_mul(mk_zext(u16_at(array, 0, 16), 32), mk_const(16, 32));
  ASSERT_TRUE(pin_equality(e, 0x120, domains, unsat));
  EXPECT_FALSE(unsat);
  EXPECT_EQ(domains.find(array.get(), 0)->values(),
            std::vector<std::uint8_t>{0x12});
}

TEST(PinEquality, DetectsMisalignedMultiplier) {
  auto array = make_array();
  DomainMap domains;
  bool unsat = false;
  const ExprRef e =
      mk_mul(mk_zext(u16_at(array, 0, 16), 32), mk_const(16, 32));
  ASSERT_TRUE(pin_equality(e, 0x121, domains, unsat));  // not divisible by 16
  EXPECT_TRUE(unsat);
}

TEST(PinEquality, DetectsOutOfRangeZext) {
  auto array = make_array();
  DomainMap domains;
  bool unsat = false;
  const ExprRef e = mk_zext(mk_read(array, 0), 32);
  ASSERT_TRUE(pin_equality(e, 0x100, domains, unsat));
  EXPECT_TRUE(unsat) << "a zext of one byte can never be 0x100";
}

TEST(PinEquality, UncoveredBitsMakeUnsat) {
  auto array = make_array();
  DomainMap domains;
  bool unsat = false;
  // Assembly covers bits 0..15 only; value with bit 20 set is impossible.
  ASSERT_TRUE(pin_equality(u16_at(array, 0), 0x100000, domains, unsat));
  EXPECT_TRUE(unsat);
}

// --- Interval arithmetic -------------------------------------------------------

TEST(Interval, RangesOfAssembliesAndArithmetic) {
  auto array = make_array();
  DomainMap domains;
  const auto r16 = interval_of(u16_at(array, 0), domains);
  EXPECT_EQ(r16.lo, 0u);
  EXPECT_EQ(r16.hi, 0xFF00u + 0xFFu);
  const auto rmul =
      interval_of(mk_mul(u16_at(array, 0), mk_const(12, 32)), domains);
  EXPECT_EQ(rmul.hi, 0xFFFFull * 12);
  // Pinned domain narrows the range.
  domains.domain(array, 1).pin(0);
  const auto rpinned = interval_of(u16_at(array, 0), domains);
  EXPECT_EQ(rpinned.hi, 255u);
}

TEST(Interval, DecidesComparisons) {
  auto array = make_array();
  DomainMap domains;
  // u16 + 200 > 100 always (min is 200).
  const ExprRef always =
      mk_ult(mk_const(100, 32), mk_add(u16_at(array, 0), mk_const(200, 32)));
  EXPECT_EQ(interval_of(always, domains).lo, 1u);
  // u16 > 0x10000 never.
  const ExprRef never = mk_ult(mk_const(0x10000, 32), u16_at(array, 0));
  EXPECT_EQ(interval_of(never, domains).hi, 0u);
}

TEST(Interval, PruneUleAssembly) {
  auto array = make_array();
  DomainMap domains;
  prune_ule_assembly(u16_at(array, 0), 0x0234, domains);
  // High lane byte can be at most 2.
  EXPECT_EQ(domains.find(array.get(), 1)->size(), 3u);
  EXPECT_EQ(domains.find(array.get(), 0), nullptr)
      << "low lane admits all values (0x234 >> 0 > 255) and stays untouched";
}

// --- Full solver -----------------------------------------------------------------

TEST(Solver, MagicBytesViaPropagation) {
  SolverFixture fx;
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 0), mk_const(0x7f, 8)));
  Assignment model;
  EXPECT_EQ(fx.solver.check_sat(cs, mk_eq(mk_read(array, 1), mk_const('M', 8)),
                                &model),
            SolverResult::kSat);
  EXPECT_EQ(model.byte(array.get(), 1), 'M');
  // Byte 0's constraint is INDEPENDENT of the query and is sliced away, so
  // the model is only filled for the connected bytes (a caller's model is
  // seeded from the state's existing model, which satisfies the rest).
  EXPECT_EQ(model.byte(array.get(), 0), 0);
  // A query connected to both bytes pulls the magic constraint in.
  Assignment full;
  EXPECT_EQ(fx.solver.check_sat(
                cs, mk_ule(mk_read(array, 0), mk_read(array, 1)), &full),
            SolverResult::kSat);
  EXPECT_EQ(full.byte(array.get(), 0), 0x7f);
  EXPECT_GE(full.byte(array.get(), 1), 0x7f);
}

TEST(Solver, ConflictingEqualitiesAreUnsat) {
  SolverFixture fx;
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 0), mk_const(1, 8)));
  EXPECT_EQ(
      fx.solver.check_sat(cs, mk_eq(mk_read(array, 0), mk_const(2, 8))),
      SolverResult::kUnsat);
}

TEST(Solver, LoopBoundQueriesAreFast) {
  SolverFixture fx;
  auto array = make_array();
  ConstraintSet cs;
  const ExprRef count = u16_at(array, 0);
  cs.add(mk_ult(mk_const(0, 32), count));  // count != 0
  // phoff + count * 12 <= 100 with phoff a u32 assembly.
  const ExprRef bound = mk_ule(
      mk_add(u32_at(array, 4), mk_mul(count, mk_const(12, 32))),
      mk_const(100, 32));
  Assignment model;
  EXPECT_EQ(fx.solver.check_sat(cs, bound, &model), SolverResult::kSat);
  // Verify the model actually satisfies everything.
  EXPECT_TRUE(evaluate_bool(bound, model));
  EXPECT_LT(fx.clock.now(), 50'000u) << "should not burn the search budget";
}

TEST(Solver, OverflowQueriesSolvedByProbes) {
  SolverFixture fx;
  auto array = make_array();
  ConstraintSet cs;
  const ExprRef w = u32_at(array, 0);
  const ExprRef h = u32_at(array, 4);
  // Can w * h overflow 32 bits? (widened comparison)
  const ExprRef wide =
      mk_mul(mk_zext(w, 64), mk_zext(h, 64));
  const ExprRef overflow = mk_ult(mk_const(0xffffffffull, 64), wide);
  Assignment model;
  EXPECT_EQ(fx.solver.check_sat(cs, overflow, &model), SolverResult::kSat);
  EXPECT_TRUE(evaluate_bool(overflow, model));
}

TEST(Solver, HintFastPathUsesNoSearch) {
  SolverFixture fx;
  auto array = make_array(8);
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 0), mk_const(42, 8)));
  auto hint = std::make_shared<Assignment>();
  hint->mutable_bytes(array)[0] = 42;
  const auto before = fx.stats.get("solver.search_sat");
  // The query must be connected to the constraints (a `true` query slices
  // everything away); ask about byte 0 directly.
  EXPECT_EQ(fx.solver.check_sat(cs, mk_ult(mk_read(array, 0), mk_const(99, 8)),
                                nullptr, hint),
            SolverResult::kSat);
  EXPECT_EQ(fx.stats.get("solver.hint_hits"), 1u);
  EXPECT_EQ(fx.stats.get("solver.search_sat"), before);
}

TEST(Solver, CacheHitsOnRepeatedQueries) {
  SolverFixture fx;
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_ult(mk_read(array, 0), mk_read(array, 1)));
  const ExprRef q = mk_eq(mk_read(array, 1), mk_const(0, 8));  // UNSAT
  EXPECT_EQ(fx.solver.check_sat(cs, q), SolverResult::kUnsat);
  const auto hits_before = fx.stats.get("solver.cache_hits");
  EXPECT_EQ(fx.solver.check_sat(cs, q), SolverResult::kUnsat);
  EXPECT_EQ(fx.stats.get("solver.cache_hits"), hits_before + 1);
}

TEST(Solver, SolveAllValidatesWholeSet) {
  SolverFixture fx;
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 0), mk_const(1, 8)));
  cs.add(mk_eq(mk_read(array, 5), mk_const(2, 8)));
  Assignment model;
  EXPECT_EQ(fx.solver.solve_all(cs, &model), SolverResult::kSat);
  EXPECT_EQ(model.byte(array.get(), 0), 1);
  EXPECT_EQ(model.byte(array.get(), 5), 2);
}

TEST(Solver, GetValueRespectsConstraints) {
  SolverFixture fx;
  auto array = make_array();
  ConstraintSet cs;
  cs.add(mk_eq(mk_read(array, 0), mk_const(77, 8)));
  const auto v = fx.solver.get_value(cs, mk_zext(mk_read(array, 0), 32));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 77u);
}

TEST(Solver, ChargesVirtualTime) {
  SolverFixture fx;
  auto array = make_array();
  ConstraintSet cs;
  for (int i = 0; i < 8; ++i)
    cs.add(mk_ult(mk_read(array, i), mk_read(array, i + 1)));
  const auto t0 = fx.clock.now();
  fx.solver.check_sat(cs, mk_eq(mk_read(array, 8), mk_const(200, 8)));
  EXPECT_GT(fx.clock.now(), t0) << "solver work must consume virtual time";
}

// Property sweep: equalities over assembled integers of every width are
// solved exactly and the model round-trips.
class SolverRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverRoundTrip, AssembledEqualityModels) {
  SolverFixture fx;
  auto array = make_array();
  const std::uint64_t target = GetParam();
  ConstraintSet cs;
  const ExprRef value = u32_at(array, 0);
  Assignment model;
  ASSERT_EQ(fx.solver.check_sat(
                cs, mk_eq(value, mk_const(target & 0xffffffff, 32)), &model),
            SolverResult::kSat);
  EXPECT_EQ(evaluate(value, model), target & 0xffffffff);
}

INSTANTIATE_TEST_SUITE_P(Values, SolverRoundTrip,
                         ::testing::Values(0ull, 1ull, 0xffull, 0x1234ull,
                                           0xdeadbeefull, 0xffffffffull,
                                           0x80000000ull, 0x00ff00ffull));

}  // namespace
}  // namespace pbse
