// Support library: virtual clock/deadlines, deterministic RNG, stats,
// and the table renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/vclock.h"

namespace pbse {
namespace {

TEST(VClock, AdvancesMonotonically) {
  VClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(5);
  clock.advance(7);
  EXPECT_EQ(clock.now(), 12u);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(VClock, DeadlineSemantics) {
  VClock clock;
  Deadline never;  // default: never expires
  EXPECT_FALSE(never.expired());

  Deadline soon(clock, 10);
  EXPECT_FALSE(soon.expired());
  EXPECT_EQ(soon.remaining(), 10u);
  clock.advance(9);
  EXPECT_FALSE(soon.expired());
  clock.advance(1);
  EXPECT_TRUE(soon.expired());
  EXPECT_EQ(soon.remaining(), 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(124);
  EXPECT_NE(a(), c()) << "different seeds must diverge";
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, UniformCoversUnitInterval) {
  Rng rng(9);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  int counts[8] = {};
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 8 - trials / 80);
    EXPECT_LT(c, trials / 8 + trials / 80);
  }
}

TEST(Stats, CountersAccumulate) {
  Stats stats;
  stats.add("a");
  stats.add("a", 4);
  stats.add("b", 2);
  EXPECT_EQ(stats.get("a"), 5u);
  EXPECT_EQ(stats.get("b"), 2u);
  EXPECT_EQ(stats.get("missing"), 0u);
  stats.clear();
  EXPECT_EQ(stats.get("a"), 0u);
}

TEST(Stats, StatsIterationOrderIsSortedByName) {
  // Locks in the ordering contract documented in stats.h: all() is sorted
  // by counter name regardless of interning or increment order, so bench
  // tables and golden files are reproducible.
  Stats stats;
  stats.add("zzz.last", 1);
  stats.add("aaa.first", 2);
  stats.add("mmm.middle", 3);
  const auto all = stats.all();
  std::vector<std::string> names;
  for (const auto& [name, value] : all) names.push_back(name);
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(names, sorted);
  EXPECT_EQ(all.at("aaa.first"), 2u);
  EXPECT_EQ(all.at("zzz.last"), 1u);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table;
  table.header({"name", "value"});
  table.row({"x", "1"});
  table.separator();
  table.row({"long-name", "23456"});
  const std::string text = table.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  // Every line has the same column boundary: find '|' positions equal.
  std::vector<std::size_t> pipe_positions;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string line = text.substr(start, end - start);
    if (line.find('|') != std::string::npos)
      pipe_positions.push_back(line.find('|'));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  ASSERT_GE(pipe_positions.size(), 3u);
  for (std::size_t p : pipe_positions) EXPECT_EQ(p, pipe_positions[0]);
}

TEST(TextTable, Formatting) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(1.09), "109%");
  EXPECT_EQ(fmt_percent(0.5), "50%");
}

}  // namespace
}  // namespace pbse
