// Target programs: every MiniC source compiles + verifies, every generated
// seed drives its target to a clean exit with no bug triggered (seeds are
// valid files), and the Fig 5 buggy seed concretely triggers the Fig 6
// CIELab out-of-bounds read.
#include <gtest/gtest.h>

#include "concolic/concolic_executor.h"
#include "solver/solver.h"
#include "targets/targets.h"
#include "vm/executor.h"

namespace pbse {
namespace {

struct ConcreteRun {
  vm::TerminationReason termination;
  std::size_t bugs;
  std::uint64_t covered;
  std::uint64_t instructions;
  std::size_t seed_states;
};

ConcreteRun run_seed(const ir::Module& module,
                     const std::vector<std::uint8_t>& seed) {
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions options;
  options.record_trace = false;
  options.offpath_bug_checks = false;  // pure replay: no solver bugs
  auto result = run_concolic(executor, "main", seed, options);
  return ConcreteRun{result.termination, executor.bugs().size(),
                     executor.num_covered(), result.instructions,
                     result.seed_states.size()};
}

TEST(Targets, AllSourcesCompileAndVerify) {
  for (const auto& t : targets::all_targets()) {
    SCOPED_TRACE(t.driver);
    ir::Module module = targets::build_target(t.source());
    EXPECT_NE(module.function_by_name("main"), nullptr);
    EXPECT_GT(module.total_blocks(), 20u) << t.driver;
  }
}

TEST(Targets, SeedsRunCleanlyAndDeep) {
  for (const auto& t : targets::all_targets()) {
    SCOPED_TRACE(t.driver);
    ir::Module module = targets::build_target(t.source());
    const auto seed = t.seed(4);
    const ConcreteRun run = run_seed(module, seed);
    EXPECT_EQ(run.termination, vm::TerminationReason::kExit) << t.driver;
    EXPECT_EQ(run.bugs, 0u) << t.driver << ": valid seed must not crash";
    // A valid seed must reach deep phases: a healthy fraction of blocks.
    EXPECT_GT(run.covered, module.total_blocks() / 4) << t.driver;
    // And fork plenty of seedStates for pbSE to schedule.
    if (t.driver != "tcpdump")
      EXPECT_GT(run.seed_states, 20u) << t.driver;
  }
}

TEST(Targets, SeedsScaleInSize) {
  for (const auto& t : targets::all_targets()) {
    SCOPED_TRACE(t.driver);
    EXPECT_LT(t.seed(2).size(), t.seed(8).size());
  }
}

TEST(Targets, BuggyTiffSeedTriggersCIELabRead) {
  ir::Module module = targets::build_target(targets::tiff2rgba_source());
  const ConcreteRun good = run_seed(module, targets::make_mtif_seed(4));
  EXPECT_EQ(good.bugs, 0u);
  const ConcreteRun bad = run_seed(module, targets::make_mtif_buggy_seed());
  EXPECT_EQ(bad.bugs, 1u) << "Fig 5 buggy seed must hit the Fig 6 OOB read";
}

TEST(Targets, PngSeedExercisesAllChunkHandlers) {
  ir::Module module = targets::build_target(targets::pngtest_source());
  const ConcreteRun run = run_seed(module, targets::make_mpng_seed(4));
  EXPECT_EQ(run.termination, vm::TerminationReason::kExit);
  // IHDR + PLTE + tIME + tEXt + IDAT + IEND handlers all run: high coverage.
  EXPECT_GT(run.covered, module.total_blocks() / 2);
}

}  // namespace
}  // namespace pbse
