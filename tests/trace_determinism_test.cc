// Satellite (a) lock-in: tracing must be a pure observer. A campaign run
// with tracing enabled must produce tick-for-tick identical results —
// coverage, bugs, final clock, and every counter — to the same campaign
// with tracing disabled, because instrumentation never touches the
// virtual clock or the search order.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/driver.h"
#include "lang/codegen.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace pbse {
namespace {

constexpr const char* kPipeline = R"(
u8 table[4] = { 1, 2, 3, 4 };
u32 main(u8* f, u32 size) {
  if (size < 8) { return 1; }
  if (f[0] != 'P' || f[1] != '1') { return 2; }
  u32 n = (u32)f[2];
  u32 sum = 0;
  for (u32 i = 0; i < n; ++i) {
    if (3 + i >= size) { return 3; }
    sum += (u32)f[3 + i];
  }
  out(sum);
  u32 off = 3 + n;
  u32 records = 0;
  while (off + 2 <= size) {
    u32 kind = (u32)f[off];
    u32 value = (u32)f[off + 1];
    off += 2;
    if (kind == 0) { break; }
    if (kind == 3) {
      out(table[value]);
    }
    records += 1;
  }
  out(records);
  return 0;
}
)";

struct RunResult {
  std::uint64_t covered = 0;
  std::uint64_t ticks = 0;
  std::size_t bugs = 0;
  std::map<std::string, std::uint64_t> counters;
};

RunResult run_campaign() {
  ir::Module module;
  std::string error;
  EXPECT_TRUE(minic::compile(kPipeline, module, error)) << error;
  module.finalize();
  core::PbseDriver driver(module, "main");
  const std::vector<std::uint8_t> seed = {'P', '1', 3,  10, 20, 30,
                                          3,   1,   3,  2,  0,  0};
  EXPECT_TRUE(driver.prepare(seed));
  driver.run(60000);
  RunResult r;
  r.covered = driver.executor().num_covered();
  r.ticks = driver.clock().now();
  r.bugs = driver.executor().bugs().size();
  r.counters = driver.stats().all();
  return r;
}

TEST(TraceDeterminism, ResultsIdenticalWithTracingOnAndOff) {
  const RunResult off = run_campaign();

  obs::Tracer::instance().start(std::make_unique<obs::MemorySink>());
  const RunResult on = run_campaign();
  auto sink = obs::Tracer::instance().stop();
  const auto& events =
      static_cast<obs::MemorySink*>(sink.get())->events();

  const RunResult off_again = run_campaign();

  // The traced run actually captured the campaign (not a vacuous pass).
  EXPECT_GT(events.size(), 100u);

  EXPECT_EQ(on.covered, off.covered);
  EXPECT_EQ(on.ticks, off.ticks);
  EXPECT_EQ(on.bugs, off.bugs);
  EXPECT_EQ(on.counters, off.counters);

  // And tracing leaves no residue: a later untraced run is unchanged too.
  EXPECT_EQ(off_again.ticks, off.ticks);
  EXPECT_EQ(off_again.counters, off.counters);
}

}  // namespace
}  // namespace pbse
