// VM: memory model (COW, bounds), every bug checker, forking semantics,
// the model invariant, and termination bookkeeping.
#include <gtest/gtest.h>

#include "concolic/concolic_executor.h"
#include "ir/verifier.h"
#include "lang/codegen.h"
#include "solver/solver.h"
#include "vm/executor.h"
#include "vm/memory.h"

namespace pbse {
namespace {

ir::Module compile(const std::string& source) {
  ir::Module module;
  std::string error;
  if (!minic::compile(source, module, error))
    ADD_FAILURE() << "compile error: " << error;
  module.finalize();
  for (const auto& p : ir::verify(module)) ADD_FAILURE() << p;
  return module;
}

struct Harness {
  explicit Harness(ir::Module module_in, vm::ExecutorOptions options = {})
      : module(std::move(module_in)),
        executor(module, solver, clock, stats, options) {}
  ir::Module module;  // must outlive the executor, which references it
  VClock clock;
  Stats stats;
  Solver solver{clock, stats};
  vm::Executor executor;

  /// Runs symbolically from an all-zero / `seed` model until every state
  /// terminates or `max_steps` is hit. Returns number of states explored.
  std::size_t run_all(const std::string& entry, std::uint32_t input_size,
                      std::uint64_t max_steps = 400'000) {
    auto input = std::make_shared<Array>("file", input_size);
    std::vector<std::unique_ptr<vm::ExecutionState>> pending;
    pending.push_back(executor.make_initial_state(entry, input, {}));
    std::size_t explored = 0;
    std::uint64_t steps = 0;
    while (!pending.empty() && steps < max_steps) {
      auto state = std::move(pending.back());
      pending.pop_back();
      ++explored;
      while (!state->done() && steps < max_steps) {
        executor.step(*state, pending);
        ++steps;
      }
    }
    return explored;
  }
};

// --- Memory model -------------------------------------------------------------

TEST(Memory, CopyOnWriteSharesUntilMutation) {
  vm::Memory a;
  const std::uint32_t id = a.add(vm::MemObject::make(4, "obj"));
  vm::Memory b = a;  // shallow copy
  EXPECT_EQ(a.find(id), b.find(id));
  b.ensure_unique(id).bytes[0] = mk_const(7, 8);
  EXPECT_NE(a.find(id), b.find(id));
  EXPECT_EQ(a.find(id)->bytes[0]->constant_value(), 0u);
  EXPECT_EQ(b.find(id)->bytes[0]->constant_value(), 7u);
}

TEST(Memory, ConcreteInitZeroPads) {
  auto obj = vm::MemObject::make_concrete(8, {1, 2, 3}, "g", true);
  EXPECT_EQ(obj->bytes[2]->constant_value(), 3u);
  EXPECT_EQ(obj->bytes[7]->constant_value(), 0u);
}

// --- Bug checkers ---------------------------------------------------------------

TEST(BugCheckers, DivisionByZero) {
  Harness h(compile(R"(
    u32 main(u8* f, u32 size) {
      u32 d = (u32)f[0];
      out(100 / d);
      return 0;
    })"));
  h.run_all("main", 4);
  ASSERT_EQ(h.executor.bugs().size(), 1u);
  EXPECT_EQ(h.executor.bugs()[0].kind, vm::BugKind::kDivByZero);
  EXPECT_EQ(h.executor.bugs()[0].input[0], 0u)
      << "witness must make the divisor zero";
}

TEST(BugCheckers, OutOfBoundsWrite) {
  Harness h(compile(R"(
    u8 buf[4];
    u32 main(u8* f, u32 size) {
      buf[f[0]] = 1;
      return 0;
    })"));
  h.run_all("main", 4);
  ASSERT_GE(h.executor.bugs().size(), 1u);
  EXPECT_EQ(h.executor.bugs()[0].kind, vm::BugKind::kOutOfBoundsWrite);
  EXPECT_GE(h.executor.bugs()[0].input[0], 4u);
}

TEST(BugCheckers, NullDeref) {
  Harness h(compile(R"(
    u8 buf[4];
    u8* pick(u32 which) {
      if (which == 7) { return &buf[0]; }
      return 0;
    }
    u32 main(u8* f, u32 size) {
      u8* p = pick((u32)f[0]);
      return (u32)*p;
    })"));
  h.run_all("main", 4);
  bool found = false;
  for (const auto& bug : h.executor.bugs())
    found = found || bug.kind == vm::BugKind::kNullDeref;
  EXPECT_TRUE(found);
}

TEST(BugCheckers, CheckedAddOverflow) {
  Harness h(compile(R"(
    u32 main(u8* f, u32 size) {
      u32 a = (u32)f[0] << 24;
      u32 b = (u32)f[1] << 24;
      out(checked_add(a, b));
      return 0;
    })"));
  h.run_all("main", 4);
  bool found = false;
  for (const auto& bug : h.executor.bugs())
    found = found || bug.kind == vm::BugKind::kIntegerOverflow;
  EXPECT_TRUE(found);
}

TEST(BugCheckers, AssertFailure) {
  Harness h(compile(R"(
    u32 main(u8* f, u32 size) {
      check(f[0] != 13);
      return 0;
    })"));
  h.run_all("main", 4);
  ASSERT_EQ(h.executor.bugs().size(), 1u);
  EXPECT_EQ(h.executor.bugs()[0].kind, vm::BugKind::kAssertFail);
  EXPECT_EQ(h.executor.bugs()[0].input[0], 13u);
}

TEST(BugCheckers, UseAfterReturnWhenEnabled) {
  // Dangling pointer: callee returns the address of its own local.
  const char* source = R"(
    u8* escape() {
      u8 local[4];
      local[0] = 9;
      return &local[0];
    }
    u32 main(u8* f, u32 size) {
      u8* p = escape();
      return (u32)*p;
    })";
  vm::ExecutorOptions options;
  options.detect_use_after_return = true;
  Harness strict(compile(source), options);
  strict.run_all("main", 4);
  ASSERT_GE(strict.executor.bugs().size(), 1u);
  EXPECT_EQ(strict.executor.bugs()[0].kind, vm::BugKind::kUseAfterReturn);

  Harness lax(compile(source));  // default: objects erased on return
  lax.run_all("main", 4);
  ASSERT_GE(lax.executor.bugs().size(), 1u);
  EXPECT_EQ(lax.executor.bugs()[0].kind, vm::BugKind::kUseAfterReturn);
}

TEST(BugCheckers, BugSitesAreDeduplicated) {
  Harness h(compile(R"(
    u8 buf[2];
    u32 main(u8* f, u32 size) {
      for (u32 i = 0; i < 3; ++i) {
        buf[f[i]] = 1;      // same site, many triggering paths
      }
      return 0;
    })"));
  h.run_all("main", 4);
  EXPECT_EQ(h.executor.num_bug_sites(), 1u);
}

// --- Forking & models -----------------------------------------------------------

TEST(Forking, BothSidesOfFeasibleBranchExplored) {
  Harness h(compile(R"(
    u32 main(u8* f, u32 size) {
      if (f[0] == 'A') { out(1); } else { out(2); }
      return 0;
    })"));
  const std::size_t explored = h.run_all("main", 4);
  EXPECT_EQ(explored, 2u);
  EXPECT_EQ(h.executor.test_cases().size(), 2u);
}

TEST(Forking, ModelsSatisfyTheirPathConstraints) {
  Harness h(compile(R"(
    u32 main(u8* f, u32 size) {
      u32 v = (u32)f[0] | ((u32)f[1] << 8);
      if (v == 0xBEEF) { out(1); } else { out(2); }
      if (f[2] > 100) { out(3); }
      return 0;
    })"));
  h.run_all("main", 4);
  // Each generated test case replays concretely to a clean exit.
  ir::Module module = compile(R"(
    u32 main(u8* f, u32 size) {
      u32 v = (u32)f[0] | ((u32)f[1] << 8);
      if (v == 0xBEEF) { out(1); } else { out(2); }
      if (f[2] > 100) { out(3); }
      return 0;
    })");
  bool beef_seen = false;
  for (const auto& tc : h.executor.test_cases()) {
    const std::uint32_t v = tc.input[0] | (tc.input[1] << 8);
    beef_seen = beef_seen || v == 0xBEEF;
  }
  EXPECT_TRUE(beef_seen) << "some test case must take the magic branch";
}

TEST(Forking, InfeasibleBranchesDoNotFork) {
  Harness h(compile(R"(
    u32 main(u8* f, u32 size) {
      u32 x = (u32)f[0];
      if (x > 10) {
        if (x <= 10) { out(0xDEAD); }   // contradiction: never explored
        out(1);
      }
      return 0;
    })"));
  const std::size_t explored = h.run_all("main", 4);
  EXPECT_EQ(explored, 2u) << "only the two consistent paths exist";
}

// --- Termination bookkeeping ------------------------------------------------------

TEST(Termination, RecursionLimit) {
  vm::ExecutorOptions options;
  options.max_call_depth = 16;
  Harness h(compile(R"(
    u32 spin(u32 n) { return spin(n + 1); }
    u32 main(u8* f, u32 size) { return spin(0); }
  )"), options);
  h.run_all("main", 4);
  EXPECT_GE(h.stats.get("executor.recursion_limit"), 1u);
}

TEST(Termination, StopIntrinsicExitsCleanly) {
  Harness h(compile(R"(
    u32 main(u8* f, u32 size) {
      out(1);
      stop();
      out(2);   // unreachable
      return 0;
    })"));
  h.run_all("main", 4);
  EXPECT_EQ(h.executor.out_log(), (std::vector<std::uint64_t>{1}));
  ASSERT_EQ(h.executor.test_cases().size(), 1u);
  EXPECT_EQ(h.executor.test_cases()[0].reason, "stop");
}

// --- Coverage accounting -----------------------------------------------------------

TEST(Coverage, LogIsMonotonicInTime) {
  Harness h(compile(R"(
    u32 main(u8* f, u32 size) {
      u32 acc = 0;
      for (u32 i = 0; i < 4; ++i) {
        if (f[i] > 10) { acc += 2; } else { acc += 1; }
      }
      out(acc);
      return 0;
    })"));
  h.run_all("main", 8);
  const auto& log = h.executor.coverage_log();
  ASSERT_FALSE(log.empty());
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LE(log[i - 1].ticks, log[i].ticks);
  EXPECT_EQ(log.size(), h.executor.num_covered());
}

}  // namespace
}  // namespace pbse
